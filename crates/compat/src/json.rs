//! Hand-rolled JSON: a value type, a recursive-descent parser, a
//! printer, and `ToJson`/`FromJson` traits.
//!
//! Replaces the workspace's `serde` derives.  Scope is deliberately
//! small: finite `f64` numbers (printed with Rust's shortest
//! round-trip formatting, so `parse(print(x)) == x` bitwise), strings
//! with the standard escapes, arrays, and order-preserving objects —
//! everything the dataset snapshot types need and nothing more.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (deterministic output).
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion error.
///
/// Parse errors carry the 1-based `line`/`col` of the offending byte so
/// a corrupted snapshot reports *where* it broke; conversion errors
/// (wrong type, missing field) have no source location and use 0/0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based source line of the failure; 0 when no location is known.
    pub line: usize,
    /// 1-based source column of the failure; 0 when no location is known.
    pub col: usize,
    /// What was expected (or what went wrong), human-readable.
    pub expected: String,
}

impl JsonError {
    /// A location-free error (type mismatches, missing fields).
    pub fn msg(expected: impl Into<String>) -> JsonError {
        JsonError { line: 0, col: 0, expected: expected.into() }
    }

    /// An error anchored at a source position.
    pub fn at(line: usize, col: usize, expected: impl Into<String>) -> JsonError {
        JsonError { line, col, expected: expected.into() }
    }

    /// True when the error carries a source location.
    pub fn has_location(&self) -> bool {
        self.line > 0
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.has_location() {
            write!(f, "json error at line {}, column {}: {}", self.line, self.col, self.expected)
        } else {
            write!(f, "json error: {}", self.expected)
        }
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError::msg(msg))
}

/// Translates a byte offset into 1-based (line, column).
fn locate(bytes: &[u8], pos: usize) -> (usize, usize) {
    let pos = pos.min(bytes.len());
    let mut line = 1;
    let mut col = 1;
    for &b in &bytes[..pos] {
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up `key`, erroring with the key name when absent.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::msg(format!("missing field `{key}`")))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(x) => Ok(*x),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// The value as a `usize` (must be a non-negative integer).
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= usize::MAX as f64 {
            Ok(x as usize)
        } else {
            err(format!("expected unsigned integer, got {x}"))
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                assert!(x.is_finite(), "JSON numbers must be finite, got {x}");
                // `{:?}` is Rust's shortest representation that parses
                // back to the same f64 — the round-trip guarantee.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x:?}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.fail("end of input");
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// A parse error at the current position, with line/column resolved.
    fn fail<T>(&self, expected: impl Into<String>) -> Result<T, JsonError> {
        self.fail_at(self.pos, expected)
    }

    /// A parse error at an explicit byte offset.
    fn fail_at<T>(&self, pos: usize, expected: impl Into<String>) -> Result<T, JsonError> {
        let (line, col) = locate(self.bytes, pos);
        Err(JsonError::at(line, col, expected))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(format!("`{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.fail(format!("literal `{word}`"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => self.fail(format!("a value, got `{}`", b as char)),
            None => self.fail("a value, got end of input"),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(t) => t,
            Err(_) => return self.fail_at(start, "a utf-8 number"),
        };
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => self.fail_at(start, format!("a finite number, got `{text}`")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let mut chars = match std::str::from_utf8(rest) {
                Ok(t) => t.chars(),
                Err(_) => return self.fail("valid utf-8 in string"),
            };
            match chars.next() {
                None => return self.fail("closing `\"`, got end of input"),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = match self.bytes.get(self.pos + 1..self.pos + 5) {
                                Some(h) => h,
                                None => return self.fail("four hex digits after \\u"),
                            };
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let code = match code {
                                Some(c) => c,
                                None => return self.fail("four hex digits after \\u"),
                            };
                            // Surrogate pairs are not needed by any
                            // workspace type; reject them explicitly.
                            let c = match char::from_u32(code) {
                                Some(c) => c,
                                None => return self.fail("a non-surrogate \\u escape"),
                            };
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return self.fail("a valid escape character"),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.fail("`,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return self.fail("`,` or `}`"),
            }
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Encodes `self`.
    fn to_json(&self) -> Json;

    /// Encodes `self` directly to JSON text.
    fn to_json_text(&self) -> String {
        self.to_json().to_text()
    }
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes a value of `Self`.
    fn from_json(v: &Json) -> Result<Self, JsonError>;

    /// Decodes from JSON text.
    fn from_json_text(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64, JsonError> {
        v.as_f64()
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<usize, JsonError> {
        v.as_usize()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<bool, JsonError> {
        v.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<String, JsonError> {
        Ok(v.as_str()?.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(x) => x.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>, JsonError> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "1e-3"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_text()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn f64_round_trips_bitwise() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.875, 6.02e23] {
            let text = Json::Num(x).to_text();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"back\\slash\ttab\u{1}end";
        let text = Json::Str(s.to_string()).to_text();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::Str("sweep".into())),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Num(-2.5)])),
            ("nested", Json::obj([("k", Json::Num(3.0))])),
        ]);
        assert_eq!(Json::parse(&v.to_text()).unwrap(), v);
    }

    #[test]
    fn object_field_access() {
        let v = Json::parse(r#"{"a": 1, "b": "x"}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_usize().unwrap(), 1);
        assert_eq!(v.field("b").unwrap().as_str().unwrap(), "x");
        assert!(v.field("c").is_err());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in ["", "{", "[1,", "tru", "\"unterminated", "1 2", "{\"a\" 1}", "nan"] {
            assert!(Json::parse(text).is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        // The `2` on line 3, column 6 is missing its separator.
        let text = "{\n  \"a\": [1\n     2]\n}";
        let e = Json::parse(text).unwrap_err();
        assert!(e.has_location());
        assert_eq!((e.line, e.col), (3, 6), "{e}");
        assert!(e.expected.contains("`,` or `]`"), "{e}");
        assert!(e.to_string().contains("line 3, column 6"), "{e}");
    }

    #[test]
    fn conversion_errors_have_no_location() {
        let v = Json::parse("{\"a\": 1}").unwrap();
        let e = v.field("b").unwrap_err();
        assert!(!e.has_location());
        assert!(e.to_string().starts_with("json error: missing field"));
        let e = v.field("a").unwrap().as_str().unwrap_err();
        assert!(e.expected.contains("expected string"), "{e}");
    }

    #[test]
    fn error_location_is_one_based() {
        let e = Json::parse("x").unwrap_err();
        assert_eq!((e.line, e.col), (1, 1), "{e}");
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 2);
    }
}
