//! The workspace-wide pipeline error type.
//!
//! Every fallible stage of the measurement-to-fit chain — sweep
//! measurement gates, DVFS latch verification, NNLS fitting, parallel
//! job execution, snapshot parsing — reports through this one enum so
//! `bench::pipeline` can propagate a structured `Result` instead of
//! panicking mid-campaign.  It lives in `compat` (the workspace's
//! bottom crate) so every layer can name it; `From` impls for
//! crate-local error types live next to those types.

use crate::json::JsonError;

/// A structured failure anywhere in the measurement-to-fit pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A measurement failed its sanity gates even after bounded retry
    /// with cooldown.
    RetryExhausted {
        /// What was being measured (kernel/setting label).
        context: String,
        /// Attempts made, including the first.
        attempts: usize,
        /// The gate that rejected the final attempt.
        last_fault: String,
    },
    /// A requested DVFS setting never latched, even after retries.
    SettingNotApplied {
        /// The setting the driver asked for.
        requested: String,
        /// The setting the hardware reported after the last attempt.
        applied: String,
        /// Latch attempts made.
        attempts: usize,
    },
    /// Not enough usable data for a fit or validation.
    InsufficientData {
        /// Minimum required.
        needed: usize,
        /// What was available.
        got: usize,
        /// Which consumer was starved.
        context: String,
    },
    /// A numeric routine failed and every fallback in the degradation
    /// ladder was exhausted.
    Numeric {
        /// The routine (e.g. `nnls`, `qr`).
        routine: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A parallel job panicked, and its one resubmission panicked too.
    WorkerPanic {
        /// Which job (chunk label or index).
        job: String,
        /// Total attempts, including the resubmission.
        attempts: usize,
    },
    /// A snapshot or dataset failed to parse or decode.
    Json(JsonError),
}

/// Workspace-wide result alias for pipeline stages.
pub type PipelineResult<T> = std::result::Result<T, PipelineError>;

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::RetryExhausted { context, attempts, last_fault } => {
                write!(f, "{context}: measurement rejected after {attempts} attempts ({last_fault})")
            }
            PipelineError::SettingNotApplied { requested, applied, attempts } => write!(
                f,
                "DVFS setting {requested} not applied after {attempts} attempts (device reports {applied})"
            ),
            PipelineError::InsufficientData { needed, got, context } => {
                write!(f, "{context}: need at least {needed} samples, got {got}")
            }
            PipelineError::Numeric { routine, detail } => write!(f, "{routine}: {detail}"),
            PipelineError::WorkerPanic { job, attempts } => {
                write!(f, "parallel job {job} panicked on all {attempts} attempts")
            }
            PipelineError::Json(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<JsonError> for PipelineError {
    fn from(e: JsonError) -> Self {
        PipelineError::Json(e)
    }
}

impl From<crate::par::JobError> for PipelineError {
    fn from(e: crate::par::JobError) -> Self {
        PipelineError::WorkerPanic {
            job: format!("chunk {}: {}", e.chunk, e.detail),
            attempts: e.attempts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = PipelineError::RetryExhausted {
            context: "Single@852/924".into(),
            attempts: 3,
            last_fault: "power out of range".into(),
        };
        assert!(e.to_string().contains("3 attempts"));
        assert!(e.to_string().contains("power out of range"));

        let e = PipelineError::SettingNotApplied {
            requested: "852/924".into(),
            applied: "852/528".into(),
            attempts: 4,
        };
        assert!(e.to_string().contains("852/528"));
    }

    #[test]
    fn json_errors_convert() {
        let e: PipelineError = JsonError::at(3, 7, "`,` or `]`").into();
        assert!(e.to_string().contains("line 3, column 7"));
    }

    #[test]
    fn job_errors_convert_to_worker_panic() {
        let job = crate::par::JobError { chunk: 3, attempts: 2, detail: "boom".into() };
        let e: PipelineError = job.into();
        match &e {
            PipelineError::WorkerPanic { job, attempts } => {
                assert_eq!(*attempts, 2);
                assert!(job.contains("chunk 3"));
                assert!(job.contains("boom"));
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert!(e.to_string().contains("panicked on all 2 attempts"));
    }

    // Satellite regression for the panicking-chunk retry path: a chunk
    // that panics once recovers transparently, and a chunk that panics
    // twice surfaces a structured `PipelineError` through the `From`
    // conversion above — with the pool still usable afterwards (the
    // "hung pool" failure mode this test exists to rule out).
    #[test]
    fn once_panicking_chunk_recovers_through_pipeline_error_path() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        crate::par::set_thread_count(Some(4));
        let attempts = AtomicUsize::new(0);
        let out: Result<Vec<usize>, PipelineError> =
            crate::par::try_par_map_vec((0..64usize).collect(), &|i| {
                if i == 9 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient failure at {i}");
                }
                i + 100
            })
            .map_err(PipelineError::from);
        assert_eq!(out.expect("retry absorbs one panic"), (100..164).collect::<Vec<usize>>());
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "exactly one resubmission");
        crate::par::set_thread_count(None);
    }

    #[test]
    fn twice_panicking_chunk_surfaces_pipeline_error_not_a_hang() {
        crate::par::set_thread_count(Some(4));
        let out: Result<Vec<usize>, PipelineError> =
            crate::par::try_par_map_vec((0..64usize).collect(), &|i| {
                if i == 21 {
                    panic!("persistent failure at {i}");
                }
                i
            })
            .map_err(PipelineError::from);
        match out {
            Err(PipelineError::WorkerPanic { job, attempts }) => {
                assert_eq!(attempts, 2);
                assert!(job.contains("persistent failure at 21"), "{job}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The pool drains and keeps serving — no wedged workers.
        let ok: Vec<usize> = crate::par::par_map_vec((0..32usize).collect(), &|i| i * 2);
        assert_eq!(ok, (0..32).map(|i| i * 2).collect::<Vec<usize>>());
        crate::par::set_thread_count(None);
    }
}
