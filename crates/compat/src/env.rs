//! One front door for every `FMM_ENERGY_*` environment variable.
//!
//! The workspace's runtime knobs used to be parsed ad hoc at each call
//! site (`compat::par` trimmed-and-parsed `FMM_ENERGY_THREADS` inline,
//! `tk1-sim::faults` read `FMM_ENERGY_FAULTS` raw).  This module
//! centralizes the lookup and the parsing conventions so every knob
//! behaves the same way:
//!
//! * values are trimmed before parsing;
//! * an unset variable and an empty value are both "not configured";
//! * a value that fails to parse (or fails the accessor's validity
//!   check) is ignored, never a panic — a typo'd knob degrades to the
//!   built-in default, matching the rest of the pipeline's
//!   graceful-degradation posture.
//!
//! The full table of recognized variables lives in README.md
//! ("Environment variables"); each parsing crate documents its own
//! knob's semantics next to its default.

use std::str::FromStr;

/// Raw (trimmed) value of `name`, or `None` if unset/empty/non-UTF-8.
pub fn raw(name: &str) -> Option<String> {
    match std::env::var(name) {
        Ok(v) => {
            let t = v.trim();
            if t.is_empty() {
                None
            } else {
                Some(t.to_string())
            }
        }
        Err(_) => None,
    }
}

/// Parses `name` as `T`, returning `None` when unset or unparseable.
pub fn parse<T: FromStr>(name: &str) -> Option<T> {
    raw(name)?.parse::<T>().ok()
}

/// `name` as a strictly positive integer (zero and garbage are ignored).
pub fn positive_usize(name: &str) -> Option<usize> {
    parse::<usize>(name).filter(|&n| n > 0)
}

/// `name` as a finite float in `[lo, hi]`; out-of-range values are
/// ignored rather than clamped, so a typo can't silently pin a knob to
/// an extreme.
pub fn float_in(name: &str, lo: f64, hi: f64) -> Option<f64> {
    parse::<f64>(name).filter(|v| v.is_finite() && *v >= lo && *v <= hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global, so a single test exercises every
    // accessor against one dedicated variable name.
    #[test]
    fn accessors_trim_validate_and_ignore_garbage() {
        let name = "FMM_ENERGY_COMPAT_ENV_TEST";
        std::env::remove_var(name);
        assert_eq!(raw(name), None);
        assert_eq!(positive_usize(name), None);

        std::env::set_var(name, "   ");
        assert_eq!(raw(name), None, "blank value reads as unset");

        std::env::set_var(name, "  7 ");
        assert_eq!(raw(name).as_deref(), Some("7"));
        assert_eq!(positive_usize(name), Some(7));
        assert_eq!(parse::<f64>(name), Some(7.0));

        std::env::set_var(name, "0");
        assert_eq!(positive_usize(name), None, "zero rejected as a width");

        std::env::set_var(name, "banana");
        assert_eq!(positive_usize(name), None);
        assert_eq!(parse::<f64>(name), None);

        std::env::set_var(name, "0.25");
        assert_eq!(float_in(name, 0.0, 1.0), Some(0.25));
        assert_eq!(float_in(name, 0.5, 1.0), None, "out-of-range ignored, not clamped");

        std::env::set_var(name, "NaN");
        assert_eq!(float_in(name, 0.0, 1.0), None, "non-finite ignored");

        std::env::remove_var(name);
    }
}
