//! Property tests for the dependency shims, written against the shims'
//! own property-testing framework (which is itself a shim — the snake
//! eats well here).
//!
//! Three contracts matter to the rest of the workspace:
//!
//! 1. the PRNG emits uniform `f64`s in `[0, 1)` and respects
//!    `random_range` bounds for any seed;
//! 2. the thread pool is *observationally sequential*: any chunked
//!    map/reduce equals the sequential computation, element for element;
//! 3. JSON encoding round-trips every value losslessly, floats bitwise.

use compat::json::Json;
use compat::par::{par_map_vec, IntoParIterExt, ParSliceExt};
use compat::prop::prelude::*;
use compat::rng::StdRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- PRNG ----

    #[test]
    fn unit_draws_stay_in_unit_interval(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..512 {
            let x: f64 = rng.random();
            prop_assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn unit_draws_look_uniform(seed in 0u64..1_000_000) {
        // Mean of 4096 uniform draws has σ ≈ 0.0045; a 0.05 band is
        // ~11σ, so a failure means a broken generator, not bad luck.
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4096;
        let mut sum = 0.0;
        let mut buckets = [0u32; 8];
        for _ in 0..n {
            let x: f64 = rng.random();
            sum += x;
            buckets[(x * 8.0) as usize] += 1;
        }
        let mean = sum / n as f64;
        prop_assert!((0.45..0.55).contains(&mean), "mean {mean}");
        for (i, &b) in buckets.iter().enumerate() {
            // Expected 512 per octile; ±40% is ~9σ for a binomial.
            prop_assert!((307..=717).contains(&b), "octile {i} holds {b}/4096");
        }
    }

    #[test]
    fn range_draws_respect_bounds(seed in 0u64..1_000_000, lo in 0usize..1000, width in 1usize..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            let x = rng.random_range(lo..lo + width);
            prop_assert!((lo..lo + width).contains(&x), "{x} outside {lo}..{}", lo + width);
        }
    }

    #[test]
    fn seeded_streams_are_reproducible(seed in 0u64..u64::MAX) {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // ---- thread pool ----

    #[test]
    fn par_map_equals_sequential_map(xs in compat::prop::collection::vec(-1e6f64..1e6, 0..200)) {
        let f = |x: &f64| x.sin() * x.cos() + x;
        let seq: Vec<f64> = xs.iter().map(f).collect();
        let par: Vec<f64> = xs.par_iter().map(f).collect();
        prop_assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            prop_assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn par_map_vec_preserves_order(xs in compat::prop::collection::vec(0usize..10_000, 0..300)) {
        let out = par_map_vec(xs.clone(), &|x| x * 2 + 1);
        let expect: Vec<usize> = xs.iter().map(|x| x * 2 + 1).collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn par_reduce_equals_sequential_fold(n in 0usize..5000) {
        let par: Vec<u64> = (0..n).into_par_iter().map(|i| (i as u64).wrapping_mul(2654435761)).collect();
        let seq: u64 = (0..n).map(|i| (i as u64).wrapping_mul(2654435761)).fold(0, u64::wrapping_add);
        let par_sum = par.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(par_sum, seq);
    }

    #[test]
    fn par_filter_map_matches_sequential(xs in compat::prop::collection::vec(0i64..1_000_000, 0..250)) {
        let par: Vec<i64> = xs
            .clone()
            .into_par_iter()
            .filter(|x| x % 3 == 0)
            .map(|x| x * 7)
            .collect();
        let seq: Vec<i64> = xs.iter().filter(|&&x| x % 3 == 0).map(|&x| x * 7).collect();
        prop_assert_eq!(par, seq);
    }

    // ---- JSON ----

    #[test]
    fn f64_round_trips_bitwise(x in -1e300f64..1e300) {
        let text = Json::Num(x).to_text();
        let back = Json::parse(&text).unwrap().as_f64().unwrap();
        prop_assert_eq!(back.to_bits(), x.to_bits(), "{text}");
    }

    #[test]
    fn json_values_round_trip(v in json_value(3)) {
        let text = v.to_text();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(&back, &v, "{text}");
        // Printing is canonical: a second round trip is a fixed point.
        prop_assert_eq!(back.to_text(), text);
    }

    #[test]
    fn strings_with_escapes_round_trip(parts in compat::prop::collection::vec(0usize..10, 0..20)) {
        const ATOMS: [&str; 10] = ["a", "\"", "\\", "/", "\n", "\t", "\r", "π", "✓", "\u{0}"];
        let s: String = parts.iter().map(|&i| ATOMS[i]).collect();
        let text = Json::Str(s.clone()).to_text();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, Json::Str(s));
    }
}

/// Depth-bounded strategy over arbitrary JSON documents.
fn json_value(depth: u32) -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        compat::prop::bool::ANY.prop_map(Json::Bool),
        (-1e15f64..1e15).prop_map(Json::Num),
        (0u64..1000).prop_map(|n| Json::Str(format!("s{n}\"\\esc"))),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    prop_oneof![
        leaf,
        compat::prop::collection::vec(json_value(depth - 1), 0..4).prop_map(Json::Arr),
        compat::prop::collection::vec((0u64..100, json_value(depth - 1)), 0..4).prop_map(|kvs| {
            Json::Obj(
                kvs.into_iter().enumerate().map(|(i, (k, v))| (format!("k{i}_{k}"), v)).collect(),
            )
        }),
    ]
    .boxed()
}
