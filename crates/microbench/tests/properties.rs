//! Property-based tests for the microbenchmark suite and dataset layer.

use compat::json::{FromJson, ToJson};
use compat::prop::prelude::*;
use dvfs_microbench::{from_csv, to_csv, Dataset, MicrobenchKind, Sample, SettingType};
use tk1_sim::{OpClass, OpVector, Setting};

fn kind() -> impl Strategy<Value = MicrobenchKind> {
    prop_oneof![
        Just(MicrobenchKind::SinglePrecision),
        Just(MicrobenchKind::DoublePrecision),
        Just(MicrobenchKind::Integer),
        Just(MicrobenchKind::SharedMemory),
        Just(MicrobenchKind::L2),
    ]
}

fn sample() -> impl Strategy<Value = Sample> {
    (
        compat::prop::option::of(kind()),
        compat::prop::option::of(0.01f64..1e3),
        compat::prop::array::uniform7(0.0f64..1e12),
        0usize..15,
        0usize..7,
        compat::prop::bool::ANY,
        1e-6f64..100.0,
        1e-6f64..1e3,
    )
        .prop_map(|(k, intensity, counts, c, m, train, time_s, energy_j)| Sample {
            kind: k.map(|k| k.name().to_string()),
            intensity,
            ops: OpVector::from_pairs(&[
                (OpClass::FlopSp, counts[0]),
                (OpClass::FlopDp, counts[1]),
                (OpClass::Int, counts[2]),
                (OpClass::Shared, counts[3]),
                (OpClass::L1, counts[4]),
                (OpClass::L2, counts[5]),
                (OpClass::Dram, counts[6]),
            ]),
            setting: Setting::new(c, m),
            setting_type: if train { SettingType::Training } else { SettingType::Validation },
            time_s,
            energy_j,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_round_trips_arbitrary_datasets(samples in compat::prop::collection::vec(sample(), 0..40)) {
        let mut ds = Dataset::new();
        for s in samples {
            ds.push(s);
        }
        let back = from_csv(&to_csv(&ds)).expect("own output parses");
        prop_assert_eq!(back.len(), ds.len());
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            prop_assert_eq!(&a.kind, &b.kind);
            prop_assert_eq!(a.intensity, b.intensity);
            prop_assert_eq!(a.setting, b.setting);
            prop_assert_eq!(a.setting_type, b.setting_type);
            prop_assert_eq!(a.time_s, b.time_s);
            prop_assert_eq!(a.energy_j, b.energy_j);
            for (class, count) in a.ops.iter() {
                prop_assert_eq!(count, b.ops.get(class));
            }
        }
    }

    #[test]
    fn json_round_trips_arbitrary_datasets(samples in compat::prop::collection::vec(sample(), 0..30)) {
        let mut ds = Dataset::new();
        for s in samples {
            ds.push(s);
        }
        let back = Dataset::from_json_text(&ds.to_json_text()).expect("own output parses");
        prop_assert_eq!(back.len(), ds.len());
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            prop_assert_eq!(&a.kind, &b.kind);
            prop_assert_eq!(a.intensity.map(f64::to_bits), b.intensity.map(f64::to_bits));
            prop_assert_eq!(a.setting, b.setting);
            prop_assert_eq!(a.setting_type, b.setting_type);
            prop_assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            prop_assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
            for (class, count) in a.ops.iter() {
                prop_assert_eq!(count.to_bits(), b.ops.get(class).to_bits());
            }
        }
    }

    #[test]
    fn folds_partition_the_dataset(samples in compat::prop::collection::vec(sample(), 1..60)) {
        let mut ds = Dataset::new();
        for s in samples {
            ds.push(s);
        }
        let folds = ds.folds_by_setting();
        let mut seen = vec![false; ds.len()];
        for fold in &folds {
            prop_assert!(!fold.is_empty());
            for &i in fold {
                prop_assert!(!seen[i], "index {i} in two folds");
                seen[i] = true;
            }
            // All members of a fold share a setting.
            let s0 = ds.samples[fold[0]].setting;
            for &i in fold {
                prop_assert_eq!(ds.samples[i].setting, s0);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(folds.len(), ds.settings().len());
    }

    #[test]
    fn training_validation_split_is_a_partition(samples in compat::prop::collection::vec(sample(), 0..60)) {
        let mut ds = Dataset::new();
        for s in samples {
            ds.push(s);
        }
        prop_assert_eq!(ds.training().count() + ds.validation().count(), ds.len());
    }

    #[test]
    fn benchmark_instances_have_positive_target_ops(k in kind(), idx in 0usize..36) {
        let grid = k.intensities();
        let intensity = grid[idx % grid.len()];
        let mb = k.instance(intensity);
        let ops = &mb.kernel().ops;
        // The targeted class dominates the kernel.
        let target = match k {
            MicrobenchKind::SinglePrecision => ops.get(OpClass::FlopSp),
            MicrobenchKind::DoublePrecision => ops.get(OpClass::FlopDp),
            MicrobenchKind::Integer => ops.get(OpClass::Int),
            MicrobenchKind::SharedMemory => ops.get(OpClass::Shared),
            MicrobenchKind::L2 => ops.get(OpClass::L2),
        };
        prop_assert!(target > 0.0);
        prop_assert!(mb.kernel().utilization > 0.9, "suite kernels saturate");
    }

    #[test]
    fn higher_intensity_means_more_target_work(k in kind()) {
        let grid = k.intensities();
        let low = k.instance(grid[0]);
        let high = k.instance(*grid.last().unwrap());
        let class = match k {
            MicrobenchKind::SinglePrecision => OpClass::FlopSp,
            MicrobenchKind::DoublePrecision => OpClass::FlopDp,
            MicrobenchKind::Integer => OpClass::Int,
            MicrobenchKind::SharedMemory => OpClass::Shared,
            MicrobenchKind::L2 => OpClass::L2,
        };
        prop_assert!(high.kernel().ops.get(class) > low.kernel().ops.get(class));
    }
}
