//! Property tests for the satellite contract of the fault campaign:
//! the same fault seed and rates must produce bitwise-identical
//! corrupted traces, bitwise-identical datasets, and identical retry
//! accounting no matter how many workers the sweep is (nominally)
//! configured with — 1, 2, 4 or 8.

use compat::prop::prelude::*;
use dvfs_microbench::dataset::table1_settings;
use dvfs_microbench::{try_run_sweep, MicrobenchKind, SweepConfig};
use powermon_sim::PowerMon;
use tk1_sim::faults::{FaultConfig, FaultRates};
use tk1_sim::Device;

fn small_faulted_config(seed: u64, fault_seed: u64, threads: usize) -> SweepConfig {
    SweepConfig {
        settings: table1_settings().into_iter().take(3).collect(),
        kinds: vec![MicrobenchKind::SharedMemory, MicrobenchKind::L2],
        trials: 1,
        seed,
        threads,
        faults: Some(FaultConfig { seed: fault_seed, rates: FaultRates::default_campaign() }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn corrupted_traces_are_bitwise_reproducible(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        stream in 0u64..32,
    ) {
        let faults = FaultConfig { seed: fault_seed, rates: FaultRates::default_campaign() };
        let kernel = MicrobenchKind::L2.instance(MicrobenchKind::L2.intensities()[2]);
        let run = || {
            let mut device = Device::new(seed);
            device.set_fault_injector(Some(faults.injector(stream)));
            let mut meter = PowerMon::new(seed ^ 0x5A5A);
            meter.set_fault_injector(Some(faults.injector(stream + 1)));
            (0..3).map(|_| meter.measure(&mut device, kernel.kernel())).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            // NaN gaps compare equal bitwise, so the whole corrupted
            // trace — dropouts included — must match sample for sample.
            prop_assert_eq!(x.trace.len(), y.trace.len());
            for (p, q) in x.trace.samples().iter().zip(y.trace.samples()) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
            prop_assert_eq!(x.measured_duration_s.to_bits(), y.measured_duration_s.to_bits());
            prop_assert_eq!(x.measured_energy_j.to_bits(), y.measured_energy_j.to_bits());
        }
    }

    #[test]
    fn sweep_is_thread_invariant_under_faults(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
    ) {
        // `threads` is advisory (the pool is persistent), but the claim
        // is stronger: per-setting seeding plus the stateless injector
        // keys make the result independent of any work partitioning.
        let runs: Vec<_> = [1usize, 2, 4, 8]
            .iter()
            .map(|&t| {
                try_run_sweep(&small_faulted_config(seed, fault_seed, t))
                    .expect("default fault rates are survivable")
            })
            .collect();
        let base = &runs[0];
        for run in &runs[1..] {
            // Identical retry accounting...
            prop_assert_eq!(&run.stats, &base.stats);
            // ...and a bitwise-identical dataset, in the same order.
            prop_assert_eq!(run.dataset.len(), base.dataset.len());
            for (a, b) in base.dataset.samples.iter().zip(&run.dataset.samples) {
                prop_assert_eq!(a.setting, b.setting);
                prop_assert_eq!(&a.kind, &b.kind);
                prop_assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
                prop_assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
            }
        }
    }

    #[test]
    fn retry_counts_are_reproducible_run_to_run(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
    ) {
        let cfg = small_faulted_config(seed, fault_seed, 2);
        let a = try_run_sweep(&cfg).expect("survivable");
        let b = try_run_sweep(&cfg).expect("survivable");
        prop_assert_eq!(&a.stats, &b.stats);
        prop_assert_eq!(a.stats.cooldown_s.to_bits(), b.stats.cooldown_s.to_bits());
    }
}
