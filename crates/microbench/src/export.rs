//! Dataset export/import in CSV — the counterpart of the paper's
//! published measurement data (their Jetson TK1 dataset shipped as flat
//! files consumed by R scripts).
//!
//! The format is one row per sample with a fixed header; floats are
//! written with enough digits to round-trip exactly.

use crate::dataset::{Dataset, Sample, SettingType};
use tk1_sim::{OpClass, Setting, ALL_CLASSES};

/// The CSV header, in column order.
pub const HEADER: &str = "kind,intensity,core_mhz,mem_mhz,split,\
sp,dp,int,shared,l1,l2,dram,time_s,energy_j";

/// Serializes a dataset to CSV (header + one line per sample).
pub fn to_csv(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(64 * (dataset.len() + 1));
    out.push_str(HEADER);
    out.push('\n');
    for s in &dataset.samples {
        let op = s.setting.operating_point();
        out.push_str(&format!(
            "{},{},{},{},{},{:e},{:e},{:e},{:e},{:e},{:e},{:e},{:e},{:e}\n",
            s.kind.as_deref().unwrap_or(""),
            s.intensity.map_or(String::new(), |i| format!("{i:e}")),
            op.core.freq_mhz,
            op.mem.freq_mhz,
            match s.setting_type {
                SettingType::Training => "T",
                SettingType::Validation => "V",
            },
            s.ops.get(OpClass::FlopSp),
            s.ops.get(OpClass::FlopDp),
            s.ops.get(OpClass::Int),
            s.ops.get(OpClass::Shared),
            s.ops.get(OpClass::L1),
            s.ops.get(OpClass::L2),
            s.ops.get(OpClass::Dram),
            s.time_s,
            s.energy_j,
        ));
    }
    out
}

/// Errors produced when parsing a CSV dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header line is missing or does not match [`HEADER`].
    BadHeader,
    /// A data row has the wrong number of fields.
    FieldCount { line: usize, found: usize },
    /// A numeric field failed to parse.
    BadNumber { line: usize, field: &'static str },
    /// A frequency pair does not correspond to a DVFS operating point.
    UnknownSetting { line: usize },
    /// The split tag is neither "T" nor "V".
    BadSplit { line: usize },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader => write!(f, "missing or mismatched CSV header"),
            CsvError::FieldCount { line, found } => {
                write!(f, "line {line}: expected 14 fields, found {found}")
            }
            CsvError::BadNumber { line, field } => {
                write!(f, "line {line}: field '{field}' is not a number")
            }
            CsvError::UnknownSetting { line } => {
                write!(f, "line {line}: frequencies are not a DVFS operating point")
            }
            CsvError::BadSplit { line } => write!(f, "line {line}: split must be T or V"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses a dataset previously written by [`to_csv`].
pub fn from_csv(text: &str) -> Result<Dataset, CsvError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(HEADER) {
        return Err(CsvError::BadHeader);
    }
    let mut dataset = Dataset::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 14 {
            return Err(CsvError::FieldCount { line: line_no, found: fields.len() });
        }
        let num = |idx: usize, name: &'static str| -> Result<f64, CsvError> {
            fields[idx]
                .parse::<f64>()
                .map_err(|_| CsvError::BadNumber { line: line_no, field: name })
        };
        let core = num(2, "core_mhz")?;
        let mem = num(3, "mem_mhz")?;
        let setting = Setting::from_frequencies(core, mem)
            .ok_or(CsvError::UnknownSetting { line: line_no })?;
        let setting_type = match fields[4] {
            "T" => SettingType::Training,
            "V" => SettingType::Validation,
            _ => return Err(CsvError::BadSplit { line: line_no }),
        };
        let mut ops = tk1_sim::OpVector::zero();
        for (k, &class) in ALL_CLASSES.iter().enumerate() {
            ops.set(class, num(5 + k, class.name())?);
        }
        dataset.push(Sample {
            kind: if fields[0].is_empty() { None } else { Some(fields[0].to_string()) },
            intensity: if fields[1].is_empty() { None } else { Some(num(1, "intensity")?) },
            ops,
            setting,
            setting_type,
            time_s: num(12, "time_s")?,
            energy_j: num(13, "energy_j")?,
        });
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepConfig};
    use crate::MicrobenchKind;

    fn small_dataset() -> Dataset {
        run_sweep(&SweepConfig {
            kinds: vec![MicrobenchKind::L2],
            settings: crate::dataset::table1_settings().into_iter().take(2).collect(),
            faults: None,
            ..SweepConfig::default()
        })
    }

    #[test]
    fn round_trip_preserves_every_sample_exactly() {
        let ds = small_dataset();
        let csv = to_csv(&ds);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.setting, b.setting);
            assert_eq!(a.setting_type, b.setting_type);
            assert_eq!(a.time_s, b.time_s, "floats round-trip bit-exactly via {{:e}}");
            assert_eq!(a.energy_j, b.energy_j);
            for (class, count) in a.ops.iter() {
                assert_eq!(count, b.ops.get(class));
            }
        }
    }

    #[test]
    fn header_is_first_line() {
        let csv = to_csv(&small_dataset());
        assert!(csv.starts_with(HEADER));
        assert_eq!(csv.lines().count(), small_dataset().len() + 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(from_csv("nope\n1,2,3").unwrap_err(), CsvError::BadHeader);
    }

    #[test]
    fn short_row_rejected() {
        let bad = format!("{HEADER}\na,b,c\n");
        assert_eq!(from_csv(&bad).unwrap_err(), CsvError::FieldCount { line: 2, found: 3 });
    }

    #[test]
    fn bad_number_rejected() {
        let bad = format!("{HEADER}\nL2,1.0,852,924,T,x,0,0,0,0,0,0,1.0,2.0\n");
        assert!(matches!(from_csv(&bad), Err(CsvError::BadNumber { line: 2, field: "SP" })));
    }

    #[test]
    fn unknown_setting_rejected() {
        let bad = format!("{HEADER}\nL2,1.0,853,924,T,0,0,0,0,0,0,0,1.0,2.0\n");
        assert_eq!(from_csv(&bad).unwrap_err(), CsvError::UnknownSetting { line: 2 });
    }

    #[test]
    fn bad_split_rejected() {
        let bad = format!("{HEADER}\nL2,1.0,852,924,Q,0,0,0,0,0,0,0,1.0,2.0\n");
        assert_eq!(from_csv(&bad).unwrap_err(), CsvError::BadSplit { line: 2 });
    }

    #[test]
    fn empty_lines_are_skipped() {
        let ds = small_dataset();
        let csv = format!("{}\n\n", to_csv(&ds));
        assert_eq!(from_csv(&csv).unwrap().len(), ds.len());
    }

    #[test]
    fn application_samples_round_trip() {
        let mut ds = Dataset::new();
        ds.push(Sample {
            kind: None,
            intensity: None,
            ops: tk1_sim::OpVector::from_pairs(&[(tk1_sim::OpClass::FlopDp, 42.5)]),
            setting: Setting::max_performance(),
            setting_type: SettingType::Validation,
            time_s: 1.25,
            energy_j: 8.5,
        });
        let back = from_csv(&to_csv(&ds)).unwrap();
        assert_eq!(back.samples[0].kind, None);
        assert_eq!(back.samples[0].intensity, None);
        assert_eq!(back.samples[0].ops.get(tk1_sim::OpClass::FlopDp), 42.5);
    }
}
