//! The five intensity-microbenchmark families.
//!
//! Each family targets one resource class.  A benchmark instance is a
//! kernel that performs `intensity` operations of the targeted compute
//! class per word loaded from the targeted memory level (or, for the
//! memory-level families, `intensity` words per flop), with the minimal
//! bookkeeping overhead of a hand-unrolled CUDA kernel.  Utilization is
//! ~1.0 by construction — the paper's microbenchmarks saturate close to
//! 100% of the targeted resource, which is why their constant-power share
//! (~30%) is so much lower than the FMM's (75–95%).

use tk1_sim::{KernelProfile, OpClass, OpVector};

/// The benchmark families of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicrobenchKind {
    /// SP flops per DRAM word swept over 25 intensities.
    SinglePrecision,
    /// DP flops per DRAM word swept over 36 intensities.
    DoublePrecision,
    /// Integer ops per DRAM word swept over 23 intensities.
    Integer,
    /// Shared-memory words per flop swept over 10 intensities.
    SharedMemory,
    /// L2 words per flop swept over 9 intensities.
    L2,
}

impl MicrobenchKind {
    /// All families in suite order.
    pub const ALL: [MicrobenchKind; 5] = [
        MicrobenchKind::SinglePrecision,
        MicrobenchKind::DoublePrecision,
        MicrobenchKind::Integer,
        MicrobenchKind::SharedMemory,
        MicrobenchKind::L2,
    ];

    /// Display name as used in the paper's Table II.
    pub fn name(self) -> &'static str {
        match self {
            MicrobenchKind::SinglePrecision => "Single",
            MicrobenchKind::DoublePrecision => "Double",
            MicrobenchKind::Integer => "Integer",
            MicrobenchKind::SharedMemory => "Shared memory",
            MicrobenchKind::L2 => "L2",
        }
    }

    /// Number of intensity points, matching Table II's "out of N" counts.
    pub fn intensity_count(self) -> usize {
        match self {
            MicrobenchKind::SinglePrecision => 25,
            MicrobenchKind::DoublePrecision => 36,
            MicrobenchKind::Integer => 23,
            MicrobenchKind::SharedMemory => 10,
            MicrobenchKind::L2 => 9,
        }
    }

    /// The intensity grid for this family (log-spaced, as in the suite).
    pub fn intensities(self) -> Vec<f64> {
        let n = self.intensity_count();
        let (lo, hi): (f64, f64) = match self {
            // Compute families sweep flops-per-word across the roofline
            // knee (machine balance is ~11 flops/word SP, ~0.5 DP).
            MicrobenchKind::SinglePrecision => (0.25, 256.0),
            MicrobenchKind::DoublePrecision => (0.125, 64.0),
            MicrobenchKind::Integer => (0.25, 128.0),
            // Memory families sweep words-per-flop.
            MicrobenchKind::SharedMemory => (0.5, 32.0),
            MicrobenchKind::L2 => (0.5, 16.0),
        };
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                lo * (hi / lo).powf(t)
            })
            .collect()
    }

    /// Builds the benchmark instance at one intensity point.
    pub fn instance(self, intensity: f64) -> Microbenchmark {
        Microbenchmark::new(self, intensity)
    }

    /// All instances of this family.
    pub fn instances(self) -> Vec<Microbenchmark> {
        self.intensities().into_iter().map(|a| self.instance(a)).collect()
    }
}

/// One benchmark instance: a family at a fixed intensity.
#[derive(Debug, Clone)]
pub struct Microbenchmark {
    /// The family.
    pub kind: MicrobenchKind,
    /// The intensity (flops/word or words/flop depending on family).
    pub intensity: f64,
    kernel: KernelProfile,
}

/// Words streamed per benchmark run.  Sized so each run lasts tens of
/// milliseconds at max frequency — long enough for dozens of power
/// samples at 1024 Hz, matching the suite's repetition strategy.
const STREAM_WORDS: f64 = 64.0 * 1024.0 * 1024.0;

/// Tile-reuse factor for the on-chip (shared memory, L2) families.
const ONCHIP_REPS: f64 = 64.0;

impl Microbenchmark {
    /// Builds the kernel descriptor for `kind` at `intensity`.
    pub fn new(kind: MicrobenchKind, intensity: f64) -> Self {
        assert!(intensity > 0.0, "intensity must be positive");
        let q = STREAM_WORDS;
        let ops = match kind {
            MicrobenchKind::SinglePrecision => OpVector::from_pairs(&[
                (OpClass::FlopSp, intensity * q),
                (OpClass::Dram, q),
                // Unrolled pointer arithmetic: ~1 int op per 16 words.
                (OpClass::Int, q / 16.0),
            ]),
            MicrobenchKind::DoublePrecision => OpVector::from_pairs(&[
                (OpClass::FlopDp, intensity * q),
                // DP streams 8-byte words: twice the 4-byte mop count.
                (OpClass::Dram, 2.0 * q),
                (OpClass::Int, q / 16.0),
            ]),
            MicrobenchKind::Integer => {
                OpVector::from_pairs(&[(OpClass::Int, intensity * q), (OpClass::Dram, q)])
            }
            // The on-chip families loop over a resident tile many times
            // (ONCHIP_REPS), so even the lowest intensity point runs long
            // enough for the 1024 Hz meter to log dozens of samples.
            MicrobenchKind::SharedMemory => OpVector::from_pairs(&[
                // One flop per inner iteration, `intensity` SM words each.
                (OpClass::FlopSp, ONCHIP_REPS * q / 8.0),
                (OpClass::Shared, intensity * ONCHIP_REPS * q / 8.0),
                // Initial tile load from DRAM, amortized over reuse.
                (OpClass::Dram, q / 512.0),
                (OpClass::Int, ONCHIP_REPS * q / 64.0),
            ]),
            MicrobenchKind::L2 => OpVector::from_pairs(&[
                (OpClass::FlopSp, ONCHIP_REPS * q / 8.0),
                (OpClass::L2, intensity * ONCHIP_REPS * q / 8.0),
                // The working set slightly exceeds L2 now and then.
                (OpClass::Dram, q / 256.0),
                (OpClass::Int, ONCHIP_REPS * q / 64.0),
            ]),
        };
        let name = format!("{}@{:.4}", kind.name(), intensity);
        let kernel = KernelProfile::new(name, ops).with_utilization(0.98);
        Microbenchmark { kind, intensity, kernel }
    }

    /// The kernel descriptor the device executes.
    pub fn kernel(&self) -> &KernelProfile {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_counts_match_table2() {
        assert_eq!(MicrobenchKind::SinglePrecision.intensity_count(), 25);
        assert_eq!(MicrobenchKind::DoublePrecision.intensity_count(), 36);
        assert_eq!(MicrobenchKind::Integer.intensity_count(), 23);
        assert_eq!(MicrobenchKind::SharedMemory.intensity_count(), 10);
        assert_eq!(MicrobenchKind::L2.intensity_count(), 9);
        let total: usize = MicrobenchKind::ALL.iter().map(|k| k.intensity_count()).sum();
        assert_eq!(total, 103, "103 intensity points across the suite");
    }

    #[test]
    fn intensity_grids_are_log_spaced_and_sorted() {
        for kind in MicrobenchKind::ALL {
            let grid = kind.intensities();
            assert_eq!(grid.len(), kind.intensity_count());
            for w in grid.windows(2) {
                assert!(w[0] < w[1], "ascending");
            }
            // Log spacing: constant ratio.
            let r0 = grid[1] / grid[0];
            for w in grid.windows(2) {
                assert!((w[1] / w[0] - r0).abs() < 1e-9 * r0);
            }
        }
    }

    #[test]
    fn sp_kernel_has_requested_intensity() {
        let mb = MicrobenchKind::SinglePrecision.instance(8.0);
        let ops = &mb.kernel().ops;
        // Arithmetic intensity in flops per DRAM *byte* = 8 per word / 4.
        assert!((ops.arithmetic_intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sp_sweep_crosses_the_roofline_knee() {
        use tk1_sim::{Setting, TimingModel};
        let tm = TimingModel::default();
        let s = Setting::max_performance();
        let grid = MicrobenchKind::SinglePrecision.intensities();
        let first = MicrobenchKind::SinglePrecision.instance(grid[0]);
        let last = MicrobenchKind::SinglePrecision.instance(*grid.last().unwrap());
        use tk1_sim::timing::BoundResource;
        assert_eq!(tm.execution_time(first.kernel(), s).bound, BoundResource::Dram);
        assert_eq!(tm.execution_time(last.kernel(), s).bound, BoundResource::FloatingPoint);
    }

    #[test]
    fn sm_benchmark_is_shared_dominated() {
        let mb = MicrobenchKind::SharedMemory.instance(16.0);
        let ops = &mb.kernel().ops;
        assert!(ops.get(OpClass::Shared) > 100.0 * ops.get(OpClass::Dram));
    }

    #[test]
    fn l2_benchmark_is_l2_dominated() {
        let mb = MicrobenchKind::L2.instance(8.0);
        let ops = &mb.kernel().ops;
        assert!(ops.get(OpClass::L2) > 50.0 * ops.get(OpClass::Dram));
    }

    #[test]
    fn dp_streams_double_width_words() {
        let mb = MicrobenchKind::DoublePrecision.instance(1.0);
        let ops = &mb.kernel().ops;
        assert_eq!(ops.get(OpClass::Dram), 2.0 * STREAM_WORDS);
    }

    #[test]
    fn runs_last_tens_of_milliseconds() {
        use tk1_sim::{Setting, TimingModel};
        let tm = TimingModel::default();
        let s = Setting::max_performance();
        for kind in MicrobenchKind::ALL {
            let t = tm.execution_time(kind.instance(kind.intensities()[0]).kernel(), s).total_s;
            assert!(t > 0.005, "{kind:?}: {t} s is long enough to sample");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_intensity_rejected() {
        let _ = MicrobenchKind::SinglePrecision.instance(0.0);
    }
}
