//! The "intensity" microbenchmark suite.
//!
//! The paper instantiates its model from a suite of highly tuned
//! microbenchmarks (the authors' public "archline" suite) that exercise
//! one resource class at a time while sweeping *arithmetic intensity* —
//! flops executed per word of data loaded — and the DVFS setting.  This
//! crate reproduces that suite against the simulated platform:
//!
//! * [`benchmarks`] — the five benchmark families (single precision,
//!   double precision, integer, shared memory, L2), each generating a
//!   kernel descriptor per intensity point.  The per-family intensity
//!   grids match the paper's Table II counts (25/36/23/10/9).
//! * [`sweep`] — the sweep driver: run families × intensities × DVFS
//!   settings × trials on a device through a power meter, producing
//!   [`Sample`]s of exactly what the experimenter can observe.
//! * [`dataset`] — the collected dataset with the paper's
//!   training/validation split (Table I's "T" and "V" setting types).

pub mod benchmarks;
pub mod dataset;
pub mod export;
pub mod sweep;

pub use benchmarks::{MicrobenchKind, Microbenchmark};
pub use dataset::{Dataset, Sample, SettingType};
pub use export::{from_csv, to_csv, CsvError};
pub use sweep::{run_sweep, try_run_sweep, SweepConfig, SweepRun, SweepStats};
