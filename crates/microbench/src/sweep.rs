//! The sweep driver: benchmarks × intensities × settings × trials.
//!
//! The paper collected 1856 sample measurements across 16 randomly chosen
//! DVFS settings.  `run_sweep` reproduces that collection loop: for every
//! configured setting it reprograms the device, runs every benchmark
//! instance the configured number of times through the power meter, and
//! logs a [`Sample`] per run.
//!
//! Each sweep owns its device and meter (seeded deterministically), so
//! sweeps are reproducible and independent.  Settings are distributed
//! over the workspace thread pool: each worker gets its *own* device
//! clone — the physical analogue being that measurements at different
//! settings are separate lab sessions, so this changes nothing
//! observable, only wall-clock time of the reproduction itself.
//!
//! # Hardened collection
//!
//! Real measurement campaigns lose runs: the DVFS write fails to latch,
//! a thermal episode stretches a run, the logger drops samples.  With a
//! [`FaultConfig`] attached (explicitly, or via the `FMM_ENERGY_FAULTS`
//! environment variable through [`SweepConfig::default`]), the sweep
//! verifies each measurement against per-run sanity gates and retries
//! with an exponential cooldown before accepting it:
//!
//! * **latch gate** — the applied operating point is read back after
//!   every DVFS write and the write re-issued until it matches;
//! * **time gate** — the host-timed duration must sit within a band of
//!   the roofline prediction (catches thermal-throttle episodes);
//! * **power gate** — mean measured power must be physically plausible;
//! * **trace gate** — at most half the log's samples may be dropped.
//!
//! A run that still fails after the retry budget keeps its last
//! measurement (so sample counts stay stable for downstream consumers)
//! and is counted in [`SweepStats::suspect_kept`].  Without a fault
//! config the gates are skipped entirely and the sweep is bitwise
//! identical to the unhardened driver.

use crate::benchmarks::{MicrobenchKind, Microbenchmark};
use crate::dataset::{table1_settings, Dataset, Sample, SettingType};
use compat::error::{PipelineError, PipelineResult};
use powermon_sim::{MeasuredExecution, PowerMon};
use tk1_sim::{Device, FaultConfig, Setting};

/// DVFS write re-issues before the sweep gives up on a setting.
const MAX_LATCH_ATTEMPTS: usize = 6;
/// Measurements per (instance, trial) before the last one is kept as-is.
const MAX_MEASURE_ATTEMPTS: usize = 4;
/// First simulated cooldown, seconds; doubles on every retry.
const COOLDOWN_BASE_S: f64 = 0.01;
/// Accepted band of host-timed duration around the roofline prediction.
/// The clean run-to-run jitter is σ ≈ 0.3%, while the shortest thermal
/// throttle episode stretches a run by ≥ 24%, so the band separates the
/// two populations by a wide margin.
const TIME_GATE_BAND: (f64, f64) = (0.85, 1.15);
/// Physically plausible mean board power, W.
const POWER_GATE_W: (f64, f64) = (1.0, 20.0);
/// Maximum tolerated fraction of dropped trace samples.
const MAX_DROPPED_FRACTION: f64 = 0.5;

/// Configuration of a measurement sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The settings to visit, with their training/validation tags.
    pub settings: Vec<(Setting, SettingType)>,
    /// Benchmark families to run.
    pub kinds: Vec<MicrobenchKind>,
    /// Repetitions per (instance, setting).
    pub trials: usize,
    /// Master seed for device and meter noise.
    pub seed: u64,
    /// Advisory worker count, kept for configuration compatibility; the
    /// sweep now runs on the persistent workspace pool, whose size is
    /// fixed at startup.  Results are independent of parallelism either
    /// way (per-setting seeding).
    pub threads: usize,
    /// Fault-injection campaign, if any.  `None` (the fault-free
    /// default when `FMM_ENERGY_FAULTS` is unset) reproduces the
    /// unhardened sweep bit for bit.
    pub faults: Option<FaultConfig>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            settings: table1_settings(),
            kinds: MicrobenchKind::ALL.to_vec(),
            trials: 1,
            seed: 0xA11C_E5ED,
            threads: 0,
            faults: FaultConfig::from_env(),
        }
    }
}

impl SweepConfig {
    /// Total number of samples this sweep will produce.
    pub fn sample_count(&self) -> usize {
        let instances: usize = self.kinds.iter().map(|k| k.intensity_count()).sum();
        self.settings.len() * instances * self.trials
    }

    /// The serving-path sweep: training settings only, every benchmark
    /// family, one trial.  A fit request needs excitation, not holdout
    /// validation rows, so dropping the 8 validation settings halves the
    /// cold-fit cost without touching the training design matrix — the
    /// fitted model is bitwise identical to one fitted from a
    /// [`SweepConfig::default`] sweep with the same seed and faults.
    pub fn service_preset(seed: u64, faults: Option<FaultConfig>) -> Self {
        SweepConfig {
            settings: table1_settings()
                .into_iter()
                .filter(|(_, ty)| *ty == SettingType::Training)
                .collect(),
            kinds: MicrobenchKind::ALL.to_vec(),
            trials: 1,
            seed,
            threads: 0,
            faults,
        }
    }
}

/// Bookkeeping of the hardened collection loop: how often the gates
/// tripped and how much (simulated) cooldown time the retries cost.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// DVFS writes that had to be re-issued because the read-back did
    /// not match the request.
    pub latch_retries: usize,
    /// Measurements re-taken because a sanity gate tripped.
    pub measurement_retries: usize,
    /// Runs that exhausted the retry budget; their last measurement was
    /// kept so downstream sample counts stay stable.
    pub suspect_kept: usize,
    /// Total simulated cooldown the retries would have cost, seconds.
    pub cooldown_s: f64,
}

impl SweepStats {
    fn absorb(&mut self, other: &SweepStats) {
        self.latch_retries += other.latch_retries;
        self.measurement_retries += other.measurement_retries;
        self.suspect_kept += other.suspect_kept;
        self.cooldown_s += other.cooldown_s;
    }

    /// Total number of retried operations of any kind.
    pub fn total_retries(&self) -> usize {
        self.latch_retries + self.measurement_retries
    }
}

/// A completed sweep: the dataset plus the collection bookkeeping.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The collected samples.
    pub dataset: Dataset,
    /// Retry/gate statistics of the collection loop.
    pub stats: SweepStats,
}

/// Runs the sweep and collects the dataset, surfacing collection
/// failures as [`PipelineError`] instead of panicking.
pub fn try_run_sweep(config: &SweepConfig) -> PipelineResult<SweepRun> {
    // Pre-build all benchmark instances once.
    let instances: Vec<_> = config.kinds.iter().flat_map(|&k| k.instances()).collect();

    // Work items are whole settings: each worker measures complete
    // settings so per-setting noise streams stay deterministic
    // regardless of thread interleaving; a panicking worker is caught
    // by the pool and its chunk resubmitted once before erroring.
    let jobs: Vec<(usize, (Setting, SettingType))> =
        config.settings.iter().copied().enumerate().collect();
    let results = compat::par::try_par_map_vec(jobs, &|(idx, (setting, ty))| {
        try_measure_setting(config, idx as u64, setting, ty, &instances)
    })
    .map_err(|e| PipelineError::WorkerPanic {
        job: format!("sweep settings chunk {}: {}", e.chunk, e.detail),
        attempts: e.attempts,
    })?;

    let mut dataset = Dataset::new();
    let mut stats = SweepStats::default();
    for result in results {
        let (samples, setting_stats) = result?;
        stats.absorb(&setting_stats);
        for s in samples {
            dataset.push(s);
        }
    }
    Ok(SweepRun { dataset, stats })
}

/// Runs the sweep and collects the dataset.
///
/// Infallible wrapper over [`try_run_sweep`] for callers that predate
/// the hardened pipeline; a collection error here means the fault rates
/// were set beyond what the retry budget can absorb.
pub fn run_sweep(config: &SweepConfig) -> Dataset {
    try_run_sweep(config).expect("sweep collection failed").dataset
}

fn try_measure_setting(
    config: &SweepConfig,
    setting_index: u64,
    setting: Setting,
    ty: SettingType,
    instances: &[Microbenchmark],
) -> PipelineResult<(Vec<Sample>, SweepStats)> {
    let mut device = Device::new(config.seed.wrapping_add(setting_index.wrapping_mul(0x9E37_79B9)));
    // One physical meter serves the whole sweep (the paper's setup), so
    // the calibration seed is shared; only the white-noise stream is
    // per-setting.
    let mut meter =
        PowerMon::with_session(config.seed, config.seed ^ setting_index.rotate_left(17));
    if let Some(faults) = &config.faults {
        // Distinct injector streams for the device (latch/throttle) and
        // the meter (acquisition) so their draws never correlate.
        device.set_fault_injector(Some(faults.injector(setting_index.wrapping_mul(2))));
        meter.set_fault_injector(Some(
            faults.injector(setting_index.wrapping_mul(2).wrapping_add(1)),
        ));
    }
    let mut stats = SweepStats::default();
    apply_setting(&mut device, setting, &mut stats)?;

    let gated = config.faults.is_some();
    let mut out = Vec::with_capacity(instances.len() * config.trials);
    for mb in instances {
        for _ in 0..config.trials {
            let m = if gated {
                measure_with_retry(&mut device, &mut meter, mb, setting, &mut stats)?
            } else {
                meter.measure(&mut device, mb.kernel())
            };
            out.push(Sample {
                kind: Some(mb.kind.name().to_string()),
                intensity: Some(mb.intensity),
                ops: mb.kernel().ops,
                setting,
                setting_type: ty,
                time_s: m.measured_duration_s,
                energy_j: m.measured_energy_j,
            });
        }
    }
    Ok((out, stats))
}

/// Programs `requested` and verifies the read-back, re-issuing the write
/// (with exponential cooldown) until the latch takes.
fn apply_setting(
    device: &mut Device,
    requested: Setting,
    stats: &mut SweepStats,
) -> PipelineResult<()> {
    for attempt in 0..MAX_LATCH_ATTEMPTS {
        device.set_operating_point(requested);
        if device.operating_point() == requested {
            return Ok(());
        }
        stats.latch_retries += 1;
        stats.cooldown_s += COOLDOWN_BASE_S * (1u64 << attempt) as f64;
    }
    let applied = device.operating_point();
    Err(PipelineError::SettingNotApplied {
        requested: format!("core[{}]/mem[{}]", requested.core_idx, requested.mem_idx),
        applied: format!("core[{}]/mem[{}]", applied.core_idx, applied.mem_idx),
        attempts: MAX_LATCH_ATTEMPTS,
    })
}

/// Measures one run, re-taking it (with exponential cooldown) while any
/// sanity gate trips.  On budget exhaustion the last measurement is
/// kept and counted as suspect — downstream robust fitting handles it.
fn measure_with_retry(
    device: &mut Device,
    meter: &mut PowerMon,
    mb: &Microbenchmark,
    requested: Setting,
    stats: &mut SweepStats,
) -> PipelineResult<MeasuredExecution> {
    let nominal_s = device.timing_model().execution_time(mb.kernel(), requested).total_s;
    let mut last: Option<MeasuredExecution> = None;
    for attempt in 0..MAX_MEASURE_ATTEMPTS {
        let m = meter.measure(device, mb.kernel());
        if gates_pass(&m, nominal_s) {
            return Ok(m);
        }
        stats.measurement_retries += 1;
        stats.cooldown_s += COOLDOWN_BASE_S * (1u64 << attempt) as f64;
        last = Some(m);
    }
    stats.suspect_kept += 1;
    last.ok_or_else(|| PipelineError::RetryExhausted {
        context: format!("measurement of {}", mb.kernel().name),
        attempts: MAX_MEASURE_ATTEMPTS,
        last_fault: "no measurement completed".to_string(),
    })
}

fn gates_pass(m: &MeasuredExecution, nominal_s: f64) -> bool {
    // Time gate: the host-timed duration against the roofline prediction.
    if nominal_s > 0.0 {
        let ratio = m.measured_duration_s / nominal_s;
        if !(TIME_GATE_BAND.0..=TIME_GATE_BAND.1).contains(&ratio) {
            return false;
        }
    }
    // Power gate: physically plausible board power.
    let power = m.measured_power_w();
    if !power.is_finite() || power <= POWER_GATE_W.0 || power >= POWER_GATE_W.1 {
        return false;
    }
    // Trace gate: enough of the log survived to trust the statistics.
    m.trace.dropped_fraction() <= MAX_DROPPED_FRACTION
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SweepConfig {
        SweepConfig {
            settings: table1_settings().into_iter().take(3).collect(),
            kinds: vec![MicrobenchKind::SharedMemory, MicrobenchKind::L2],
            trials: 1,
            seed: 7,
            threads: 2,
            faults: None,
        }
    }

    fn faulted_config() -> SweepConfig {
        SweepConfig { faults: Some(FaultConfig::default_campaign()), ..small_config() }
    }

    #[test]
    fn sweep_produces_expected_sample_count() {
        let cfg = small_config();
        let ds = run_sweep(&cfg);
        assert_eq!(ds.len(), cfg.sample_count());
        assert_eq!(ds.len(), 3 * (10 + 9));
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = small_config();
        let a = run_sweep(&cfg);
        let b = run_sweep(&cfg);
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.energy_j, y.energy_j);
            assert_eq!(x.time_s, y.time_s);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mut cfg = small_config();
        cfg.threads = 1;
        let serial = run_sweep(&cfg);
        cfg.threads = 3;
        let parallel = run_sweep(&cfg);
        // Order may differ between thread layouts; compare as multisets
        // keyed by (setting, kind, intensity).
        let key = |s: &Sample| {
            (
                s.setting.core_idx,
                s.setting.mem_idx,
                s.kind.clone(),
                (s.intensity.unwrap() * 1e9) as u64,
            )
        };
        let mut a: Vec<_> = serial.samples.iter().map(|s| (key(s), s.energy_j)).collect();
        let mut b: Vec<_> = parallel.samples.iter().map(|s| (key(s), s.energy_j)).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let cfg = SweepConfig::default();
        // 16 settings x 103 intensity points = 1648 samples per trial —
        // the same scale as the paper's 1856 (which included re-runs).
        assert_eq!(cfg.sample_count(), 16 * 103);
    }

    #[test]
    fn samples_carry_positive_measurements() {
        let ds = run_sweep(&small_config());
        for s in &ds.samples {
            assert!(s.time_s > 0.0);
            assert!(s.energy_j > 0.0);
            assert!(s.power_w() > 1.0 && s.power_w() < 20.0);
        }
    }

    #[test]
    fn faulted_sweep_completes_with_full_sample_count() {
        let cfg = faulted_config();
        let run = try_run_sweep(&cfg).expect("default fault rates must be survivable");
        assert_eq!(run.dataset.len(), cfg.sample_count(), "retries must not drop samples");
        assert!(
            run.stats.total_retries() > 0,
            "default rates must trip some gate: {:?}",
            run.stats
        );
        assert!(run.stats.cooldown_s > 0.0);
        for s in &run.dataset.samples {
            assert!(s.time_s > 0.0 && s.energy_j > 0.0, "no corrupted sample escapes: {s:?}");
        }
    }

    #[test]
    fn faulted_sweep_is_deterministic_including_stats() {
        let cfg = faulted_config();
        let a = try_run_sweep(&cfg).expect("sweep a");
        let b = try_run_sweep(&cfg).expect("sweep b");
        assert_eq!(a.stats, b.stats, "retry counts are part of the deterministic contract");
        for (x, y) in a.dataset.samples.iter().zip(&b.dataset.samples) {
            assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits());
            assert_eq!(x.time_s.to_bits(), y.time_s.to_bits());
        }
    }

    #[test]
    fn fault_free_config_matches_legacy_sweep_bitwise() {
        // `faults: None` must reproduce the unhardened driver exactly;
        // golden values depend on it.
        let clean = run_sweep(&small_config());
        let hardened = try_run_sweep(&small_config()).expect("clean sweep");
        assert_eq!(hardened.stats, SweepStats::default());
        for (x, y) in clean.samples.iter().zip(&hardened.dataset.samples) {
            assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits());
            assert_eq!(x.time_s.to_bits(), y.time_s.to_bits());
        }
    }

    #[test]
    fn service_preset_matches_training_rows_of_the_default_sweep_bitwise() {
        let preset = SweepConfig::service_preset(0xA11C_E5ED, None);
        assert_eq!(preset.settings.len(), 8, "training settings only");
        assert_eq!(preset.sample_count(), 8 * 103);

        // Training settings sit at indices 0..8 of `table1_settings`,
        // so per-setting device seeds are unchanged and the preset's
        // samples must equal the default sweep's training split bitwise
        // — the cached-model identity the serving layer relies on.
        let full = run_sweep(&SweepConfig { faults: None, ..SweepConfig::default() });
        let fast = run_sweep(&preset);
        let training: Vec<_> = full.training().collect();
        assert_eq!(training.len(), fast.samples.len());
        for (x, y) in training.iter().zip(&fast.samples) {
            assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits());
            assert_eq!(x.time_s.to_bits(), y.time_s.to_bits());
        }
    }

    #[test]
    fn unsurvivable_latch_rates_error_instead_of_panicking() {
        use tk1_sim::FaultRates;
        let mut cfg = small_config();
        cfg.faults = Some(FaultConfig {
            seed: 1,
            rates: FaultRates { latch_fail: 1.0, latch_neighbor: 1.0, ..FaultRates::off() },
        });
        match try_run_sweep(&cfg) {
            Err(PipelineError::SettingNotApplied { attempts, .. }) => {
                assert_eq!(attempts, MAX_LATCH_ATTEMPTS);
            }
            other => panic!("expected SettingNotApplied, got {other:?}"),
        }
    }
}
