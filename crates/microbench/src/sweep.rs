//! The sweep driver: benchmarks × intensities × settings × trials.
//!
//! The paper collected 1856 sample measurements across 16 randomly chosen
//! DVFS settings.  `run_sweep` reproduces that collection loop: for every
//! configured setting it reprograms the device, runs every benchmark
//! instance the configured number of times through the power meter, and
//! logs a [`Sample`] per run.
//!
//! Each sweep owns its device and meter (seeded deterministically), so
//! sweeps are reproducible and independent.  Settings are distributed
//! over a scoped-thread pool: each worker gets its *own* device
//! clone — the physical analogue being that measurements at different
//! settings are separate lab sessions, so this changes nothing
//! observable, only wall-clock time of the reproduction itself.

use crate::benchmarks::MicrobenchKind;
use crate::dataset::{table1_settings, Dataset, Sample, SettingType};
use powermon_sim::PowerMon;
use tk1_sim::{Device, Setting};

/// Configuration of a measurement sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The settings to visit, with their training/validation tags.
    pub settings: Vec<(Setting, SettingType)>,
    /// Benchmark families to run.
    pub kinds: Vec<MicrobenchKind>,
    /// Repetitions per (instance, setting).
    pub trials: usize,
    /// Master seed for device and meter noise.
    pub seed: u64,
    /// Number of worker threads (0 = one per setting, capped at 8).
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            settings: table1_settings(),
            kinds: MicrobenchKind::ALL.to_vec(),
            trials: 1,
            seed: 0xA11C_E5ED,
            threads: 0,
        }
    }
}

impl SweepConfig {
    /// Total number of samples this sweep will produce.
    pub fn sample_count(&self) -> usize {
        let instances: usize = self.kinds.iter().map(|k| k.intensity_count()).sum();
        self.settings.len() * instances * self.trials
    }
}

/// Runs the sweep and collects the dataset.
pub fn run_sweep(config: &SweepConfig) -> Dataset {
    let threads =
        if config.threads == 0 { config.settings.len().clamp(1, 8) } else { config.threads };
    // Pre-build all benchmark instances once.
    let instances: Vec<_> = config.kinds.iter().flat_map(|&k| k.instances()).collect();

    // Work queue over settings; each worker measures complete settings so
    // per-setting noise streams stay deterministic regardless of thread
    // interleaving.
    let jobs: Vec<(usize, (Setting, SettingType))> =
        config.settings.iter().copied().enumerate().collect();
    let results: Vec<Vec<Sample>> = std::thread::scope(|scope| {
        let chunks: Vec<_> = jobs.chunks(jobs.len().div_ceil(threads)).collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let instances = &instances;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for &(idx, (setting, ty)) in chunk {
                        out.extend(measure_setting(
                            config.seed,
                            idx as u64,
                            setting,
                            ty,
                            instances,
                            config.trials,
                        ));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    });

    let mut dataset = Dataset::new();
    for group in results {
        for s in group {
            dataset.push(s);
        }
    }
    dataset
}

fn measure_setting(
    seed: u64,
    setting_index: u64,
    setting: Setting,
    ty: SettingType,
    instances: &[crate::benchmarks::Microbenchmark],
    trials: usize,
) -> Vec<Sample> {
    let mut device = Device::new(seed.wrapping_add(setting_index.wrapping_mul(0x9E37_79B9)));
    // One physical meter serves the whole sweep (the paper's setup), so
    // the calibration seed is shared; only the white-noise stream is
    // per-setting.
    let mut meter = PowerMon::with_session(seed, seed ^ setting_index.rotate_left(17));
    device.set_operating_point(setting);
    let mut out = Vec::with_capacity(instances.len() * trials);
    for mb in instances {
        for _ in 0..trials {
            let m = meter.measure(&mut device, mb.kernel());
            out.push(Sample {
                kind: Some(mb.kind.name().to_string()),
                intensity: Some(mb.intensity),
                ops: mb.kernel().ops,
                setting,
                setting_type: ty,
                time_s: m.execution.duration_s,
                energy_j: m.measured_energy_j,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SweepConfig {
        SweepConfig {
            settings: table1_settings().into_iter().take(3).collect(),
            kinds: vec![MicrobenchKind::SharedMemory, MicrobenchKind::L2],
            trials: 1,
            seed: 7,
            threads: 2,
        }
    }

    #[test]
    fn sweep_produces_expected_sample_count() {
        let cfg = small_config();
        let ds = run_sweep(&cfg);
        assert_eq!(ds.len(), cfg.sample_count());
        assert_eq!(ds.len(), 3 * (10 + 9));
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = small_config();
        let a = run_sweep(&cfg);
        let b = run_sweep(&cfg);
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.energy_j, y.energy_j);
            assert_eq!(x.time_s, y.time_s);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mut cfg = small_config();
        cfg.threads = 1;
        let serial = run_sweep(&cfg);
        cfg.threads = 3;
        let parallel = run_sweep(&cfg);
        // Order may differ between thread layouts; compare as multisets
        // keyed by (setting, kind, intensity).
        let key = |s: &Sample| {
            (
                s.setting.core_idx,
                s.setting.mem_idx,
                s.kind.clone(),
                (s.intensity.unwrap() * 1e9) as u64,
            )
        };
        let mut a: Vec<_> = serial.samples.iter().map(|s| (key(s), s.energy_j)).collect();
        let mut b: Vec<_> = parallel.samples.iter().map(|s| (key(s), s.energy_j)).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let cfg = SweepConfig::default();
        // 16 settings x 103 intensity points = 1648 samples per trial —
        // the same scale as the paper's 1856 (which included re-runs).
        assert_eq!(cfg.sample_count(), 16 * 103);
    }

    #[test]
    fn samples_carry_positive_measurements() {
        let ds = run_sweep(&small_config());
        for s in &ds.samples {
            assert!(s.time_s > 0.0);
            assert!(s.energy_j > 0.0);
            assert!(s.power_w() > 1.0 && s.power_w() < 20.0);
        }
    }
}
