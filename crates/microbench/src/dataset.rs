//! The measurement dataset and the Table I training/validation split.

use crate::benchmarks::MicrobenchKind;
use compat::json::{FromJson, Json, JsonError, ToJson};
use tk1_sim::{OpVector, Setting};

/// Whether a DVFS setting belongs to the paper's training ("T") or
/// validation ("V") rows of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SettingType {
    /// Used for fitting the model constants.
    Training,
    /// Held out for validation.
    Validation,
}

/// The 8 training settings of Table I, `(core MHz, mem MHz)`.
pub const TRAINING_SETTINGS: [(f64, f64); 8] = [
    (852.0, 924.0),
    (396.0, 924.0),
    (852.0, 528.0),
    (648.0, 528.0),
    (396.0, 528.0),
    (852.0, 204.0),
    (648.0, 204.0),
    (396.0, 204.0),
];

/// The 8 validation settings of Table I, `(core MHz, mem MHz)`.
pub const VALIDATION_SETTINGS: [(f64, f64); 8] = [
    (756.0, 924.0),
    (180.0, 528.0),
    (540.0, 528.0),
    (540.0, 204.0),
    (756.0, 204.0),
    (72.0, 68.0),
    (756.0, 68.0),
    (180.0, 924.0),
];

/// Resolves the Table I settings, training first then validation.
pub fn table1_settings() -> Vec<(Setting, SettingType)> {
    let resolve = |(c, m): (f64, f64)| {
        // The tables above are written against the fixed DVFS tables of
        // the same workspace; a miss is a programming error, not data.
        Setting::from_frequencies(c, m).expect("Table I setting missing from DVFS tables")
    };
    TRAINING_SETTINGS
        .iter()
        .map(|&fm| (resolve(fm), SettingType::Training))
        .chain(VALIDATION_SETTINGS.iter().map(|&fm| (resolve(fm), SettingType::Validation)))
        .collect()
}

/// One observed (kernel, setting) measurement: everything the
/// experimenter can see, and nothing they can't.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Which benchmark family produced the kernel (None for applications).
    pub kind: Option<String>,
    /// The family's intensity parameter, if applicable.
    pub intensity: Option<f64>,
    /// Operation counts of the kernel (known analytically for the suite;
    /// from performance counters for applications).
    pub ops: OpVector,
    /// The DVFS setting it ran at.
    pub setting: Setting,
    /// Whether the setting is in the training or validation split.
    pub setting_type: SettingType,
    /// Host-timed execution duration, seconds.
    pub time_s: f64,
    /// PowerMon-measured energy, J.
    pub energy_j: f64,
}

impl Sample {
    /// Measured average power, W.
    pub fn power_w(&self) -> f64 {
        if self.time_s > 0.0 {
            self.energy_j / self.time_s
        } else {
            0.0
        }
    }
}

/// A collected measurement dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// All samples, in collection order.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// The training-split samples.
    pub fn training(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(|s| s.setting_type == SettingType::Training)
    }

    /// The validation-split samples.
    pub fn validation(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(|s| s.setting_type == SettingType::Validation)
    }

    /// Samples of one benchmark family.
    pub fn of_kind(&self, kind: MicrobenchKind) -> impl Iterator<Item = &Sample> {
        let name = kind.name();
        self.samples.iter().filter(move |s| s.kind.as_deref() == Some(name))
    }

    /// The distinct settings present, in first-appearance order.
    pub fn settings(&self) -> Vec<Setting> {
        let mut seen = Vec::new();
        for s in &self.samples {
            if !seen.contains(&s.setting) {
                seen.push(s.setting);
            }
        }
        seen
    }

    /// Partitions sample indices into `k` folds by setting, for k-fold
    /// cross-validation over *settings* (the paper's 16-fold CV holds out
    /// one setting at a time).
    pub fn folds_by_setting(&self) -> Vec<Vec<usize>> {
        let settings = self.settings();
        settings
            .iter()
            .map(|&set| {
                self.samples
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.setting == set)
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect()
    }
}

impl ToJson for SettingType {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                SettingType::Training => "training",
                SettingType::Validation => "validation",
            }
            .to_string(),
        )
    }
}

impl FromJson for SettingType {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "training" => Ok(SettingType::Training),
            "validation" => Ok(SettingType::Validation),
            other => Err(JsonError::msg(format!("unknown setting type `{other}`"))),
        }
    }
}

impl ToJson for Sample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", self.kind.to_json()),
            ("intensity", self.intensity.to_json()),
            ("ops", self.ops.to_json()),
            ("setting", self.setting.to_json()),
            ("setting_type", self.setting_type.to_json()),
            ("time_s", Json::Num(self.time_s)),
            ("energy_j", Json::Num(self.energy_j)),
        ])
    }
}

impl FromJson for Sample {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Sample {
            kind: Option::<String>::from_json(v.field("kind")?)?,
            intensity: Option::<f64>::from_json(v.field("intensity")?)?,
            ops: OpVector::from_json(v.field("ops")?)?,
            setting: Setting::from_json(v.field("setting")?)?,
            setting_type: SettingType::from_json(v.field("setting_type")?)?,
            time_s: v.field("time_s")?.as_f64()?,
            energy_j: v.field("energy_j")?.as_f64()?,
        })
    }
}

impl ToJson for Dataset {
    fn to_json(&self) -> Json {
        Json::obj([("samples", self.samples.to_json())])
    }
}

impl FromJson for Dataset {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Dataset { samples: Vec::<Sample>::from_json(v.field("samples")?)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk1_sim::OpClass;

    fn sample_at(core: f64, mem: f64, ty: SettingType, e: f64) -> Sample {
        Sample {
            kind: Some("Single".into()),
            intensity: Some(1.0),
            ops: OpVector::from_pairs(&[(OpClass::FlopSp, 1.0)]),
            setting: Setting::from_frequencies(core, mem).unwrap(),
            setting_type: ty,
            time_s: 2.0,
            energy_j: e,
        }
    }

    #[test]
    fn table1_settings_resolve_and_split() {
        let all = table1_settings();
        assert_eq!(all.len(), 16);
        assert_eq!(all.iter().filter(|(_, t)| *t == SettingType::Training).count(), 8);
        // No duplicates.
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i].0, all[j].0);
            }
        }
    }

    #[test]
    fn split_iterators_partition() {
        let mut ds = Dataset::new();
        ds.push(sample_at(852.0, 924.0, SettingType::Training, 1.0));
        ds.push(sample_at(756.0, 924.0, SettingType::Validation, 2.0));
        ds.push(sample_at(396.0, 204.0, SettingType::Training, 3.0));
        assert_eq!(ds.training().count(), 2);
        assert_eq!(ds.validation().count(), 1);
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn power_is_energy_over_time() {
        let s = sample_at(852.0, 924.0, SettingType::Training, 10.0);
        assert_eq!(s.power_w(), 5.0);
    }

    #[test]
    fn folds_group_by_setting() {
        let mut ds = Dataset::new();
        ds.push(sample_at(852.0, 924.0, SettingType::Training, 1.0));
        ds.push(sample_at(756.0, 924.0, SettingType::Validation, 2.0));
        ds.push(sample_at(852.0, 924.0, SettingType::Training, 3.0));
        let folds = ds.folds_by_setting();
        assert_eq!(folds.len(), 2);
        assert_eq!(folds[0], vec![0, 2]);
        assert_eq!(folds[1], vec![1]);
    }

    #[test]
    fn of_kind_filters() {
        let mut ds = Dataset::new();
        ds.push(sample_at(852.0, 924.0, SettingType::Training, 1.0));
        let mut app = sample_at(852.0, 924.0, SettingType::Training, 1.0);
        app.kind = None;
        ds.push(app);
        assert_eq!(ds.of_kind(MicrobenchKind::SinglePrecision).count(), 1);
        assert_eq!(ds.of_kind(MicrobenchKind::L2).count(), 0);
    }

    #[test]
    fn empty_dataset_reports_empty() {
        let ds = Dataset::new();
        assert!(ds.is_empty());
        assert!(ds.settings().is_empty());
        assert!(ds.folds_by_setting().is_empty());
    }

    #[test]
    fn dataset_json_round_trips_bitwise() {
        let mut ds = Dataset::new();
        ds.push(sample_at(852.0, 924.0, SettingType::Training, 1.0 / 3.0));
        let mut app = sample_at(396.0, 204.0, SettingType::Validation, 6.02e23);
        app.kind = None;
        app.intensity = None;
        ds.push(app);
        let back = Dataset::from_json_text(&ds.to_json_text()).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.intensity, b.intensity);
            assert_eq!(a.setting, b.setting);
            assert_eq!(a.setting_type, b.setting_type);
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
            for (class, count) in a.ops.iter() {
                assert_eq!(count.to_bits(), b.ops.get(class).to_bits());
            }
        }
    }

    #[test]
    fn sample_decode_rejects_bad_setting_type() {
        let mut v = sample_at(852.0, 924.0, SettingType::Training, 1.0).to_json();
        if let Json::Obj(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "setting_type" {
                    *val = Json::Str("test".into());
                }
            }
        }
        assert!(Sample::from_json(&v).is_err());
    }
}
