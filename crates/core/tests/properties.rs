//! Property-based tests for the energy model's algebraic invariants.

use compat::prop::prelude::*;
use dvfs_energy_model::{EnergyModel, PrefetchScenario};
use tk1_sim::{OpClass, OpVector, Setting, NUM_OP_CLASSES};

fn model() -> impl Strategy<Value = EnergyModel> {
    (compat::prop::array::uniform7(1.0f64..500.0), 0.5f64..5.0, 0.5f64..5.0, 0.0f64..2.0).prop_map(
        |(c0, c1p, c1m, pmisc)| {
            let mut c0_arr = [0.0; NUM_OP_CLASSES];
            c0_arr.copy_from_slice(&c0);
            EnergyModel {
                c0_pj_per_v2: c0_arr,
                c1_proc_w_per_v: c1p,
                c1_mem_w_per_v: c1m,
                p_misc_w: pmisc,
            }
        },
    )
}

fn ops() -> impl Strategy<Value = OpVector> {
    compat::prop::array::uniform7(0.0f64..1e9).prop_map(|counts| {
        OpVector::from_pairs(&[
            (OpClass::FlopSp, counts[0]),
            (OpClass::FlopDp, counts[1]),
            (OpClass::Int, counts[2]),
            (OpClass::Shared, counts[3]),
            (OpClass::L1, counts[4]),
            (OpClass::L2, counts[5]),
            (OpClass::Dram, counts[6]),
        ])
    })
}

fn setting() -> impl Strategy<Value = Setting> {
    (0usize..15, 0usize..7).prop_map(|(c, m)| Setting::new(c, m))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prediction_is_linear_in_ops(m in model(), a in ops(), b in ops(), s in setting(), t in 0.0f64..10.0) {
        // E(a + b, t1 + t2) = E(a, t1) + E(b, t2): eq. 9 is linear.
        let mut ab = a;
        ab.accumulate(&b);
        let lhs = m.predict_energy_j(&ab, s, 2.0 * t);
        let rhs = m.predict_energy_j(&a, s, t) + m.predict_energy_j(&b, s, t);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.max(1e-12));
    }

    #[test]
    fn breakdown_components_sum_to_total(m in model(), o in ops(), s in setting(), t in 0.0f64..10.0) {
        let b = m.predict_breakdown(&o, s, t);
        let total = b.computation_j() + b.data_j() + b.constant_j;
        prop_assert!((total - b.total_j()).abs() <= 1e-12 * total.max(1e-12));
        prop_assert!(b.constant_share() >= 0.0 && b.constant_share() <= 1.0);
    }

    #[test]
    fn energy_grows_with_time(m in model(), o in ops(), s in setting(), t in 0.01f64..10.0) {
        let e1 = m.predict_energy_j(&o, s, t);
        let e2 = m.predict_energy_j(&o, s, t * 2.0);
        prop_assert!(e2 >= e1, "constant power only adds energy with time");
    }

    #[test]
    fn per_op_energy_scales_with_square_of_voltage(m in model(), s in setting()) {
        for class in tk1_sim::ops::ALL_CLASSES {
            let op = s.operating_point();
            let v = if class.is_mem_domain() { op.mem.voltage_v } else { op.core.voltage_v };
            let expected = m.c0_pj_per_v2[class.index()] * 1e-12 * v * v;
            prop_assert!((m.energy_per_op_j(class, s) - expected).abs() < 1e-24);
        }
    }

    #[test]
    fn table1_row_is_consistent_with_per_op_energies(m in model(), s in setting()) {
        let (sp, dp, int, sm, l2, dram, pi0) = m.table1_row(s);
        prop_assert!((sp - m.energy_per_op_j(OpClass::FlopSp, s) * 1e12).abs() < 1e-9);
        prop_assert!((dp - m.energy_per_op_j(OpClass::FlopDp, s) * 1e12).abs() < 1e-9);
        prop_assert!((int - m.energy_per_op_j(OpClass::Int, s) * 1e12).abs() < 1e-9);
        prop_assert!((sm - m.energy_per_op_j(OpClass::Shared, s) * 1e12).abs() < 1e-9);
        prop_assert!((l2 - m.energy_per_op_j(OpClass::L2, s) * 1e12).abs() < 1e-9);
        prop_assert!((dram - m.energy_per_op_j(OpClass::Dram, s) * 1e12).abs() < 1e-9);
        prop_assert!((pi0 - m.constant_power_w(s)).abs() < 1e-12);
    }

    #[test]
    fn prefetch_verdict_accounting_balances(
        m in model(),
        o in ops(),
        unused in 0.0f64..0.99,
        slowdown in 1.0f64..2.0,
        t in 0.001f64..1.0,
    ) {
        let s = Setting::max_performance();
        let v = dvfs_energy_model::prefetch_whatif(
            &m,
            &PrefetchScenario { ops: o, time_s: t, unused_fraction: unused, slowdown },
            s,
        );
        // savings = avoided DRAM − added constant (exactly, by eq. 9).
        let recon = v.avoided_dram_j - v.added_constant_j;
        prop_assert!((v.savings_j - recon).abs() <= 1e-9 * v.energy_on_j.max(1e-12),
            "{} vs {}", v.savings_j, recon);
        prop_assert!(v.energy_on_j >= 0.0 && v.energy_off_j >= 0.0);
    }

    #[test]
    fn error_stats_bounds(errors in compat::prop::collection::vec(-0.5f64..0.5, 1..100)) {
        let stats = dvfs_energy_model::ErrorStats::from_relative_errors(&errors);
        prop_assert!(stats.min_pct <= stats.mean_pct + 1e-12);
        prop_assert!(stats.mean_pct <= stats.max_pct + 1e-12);
        prop_assert!(stats.min_pct >= 0.0);
        prop_assert_eq!(stats.count, errors.len());
    }

    #[test]
    fn pareto_frontier_contains_no_dominated_point(
        times in compat::prop::collection::vec(0.1f64..10.0, 2..40),
        energies in compat::prop::collection::vec(0.1f64..10.0, 2..40),
    ) {
        use dvfs_energy_model::{OperatingPointMeasure, TradeoffAnalysis};
        let n = times.len().min(energies.len());
        let points: Vec<OperatingPointMeasure> = (0..n)
            .map(|i| OperatingPointMeasure {
                setting: Setting::new(i % 15, i % 7),
                time_s: times[i],
                energy_j: energies[i],
            })
            .collect();
        let analysis = TradeoffAnalysis::new(points.clone());
        let frontier = analysis.pareto_frontier();
        prop_assert!(!frontier.is_empty());
        for f in &frontier {
            for p in &points {
                let dominates = p.time_s <= f.time_s
                    && p.energy_j <= f.energy_j
                    && (p.time_s < f.time_s || p.energy_j < f.energy_j);
                prop_assert!(!dominates, "frontier point {f:?} dominated by {p:?}");
            }
        }
    }
}
