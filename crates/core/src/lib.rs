//! The DVFS-aware energy roofline model (the paper's contribution).
//!
//! The model (paper equation 9) says that a program executing operation
//! counts `W_k` (per compute class) and `Q_l` (per memory level) in time
//! `T` at a DVFS setting with processor voltage `V_proc` and memory
//! voltage `V_mem` consumes
//!
//! ```text
//! E = Σ_k W_k·ĉ0,k·V_proc² + Σ_l Q_l·ĉ0,l·V(l)²
//!     + (c1,proc·V_proc + c1,mem·V_mem + P_misc) · T
//! ```
//!
//! where `V(l)` is the memory voltage for DRAM traffic and the processor
//! voltage for the on-chip levels.  The constants are *estimated* from
//! microbenchmark measurements by non-negative least squares
//! (Section II-C), validated by cross-validation (II-D), and then used to
//! autotune DVFS settings for energy (II-E) and to analyze where a real
//! application — the fast multipole method — spends its energy
//! (Section IV).
//!
//! Crate layout:
//!
//! * [`model`] — the fitted model and its predictions/breakdowns.
//! * [`fit`] — design-matrix construction + NNLS estimation.
//! * [`crossval`] — the paper's 2-fold (train/validation) and
//!   leave-one-setting-out cross-validations.
//! * [`autotune`] — model-based energy autotuning vs. the race-to-halt
//!   "time oracle" (Table II).
//! * [`breakdown`] — instruction/data/constant-power energy decomposition
//!   (Figures 6 and 7).
//! * [`whatif`] — the prefetch what-if analysis sketched in the paper's
//!   conclusion.
//! * [`service`] — request-shaped fit/predict entry points consumed by
//!   the autotune server (`crates/autoserve`).
//! * [`stats`] — relative-error statistics shared by all reports.
//! * [`experiments`] — the S1–S8 / F1–F8 experiment matrix of Table IV.

pub mod ablation;
pub mod autotune;
pub mod bootstrap;
pub mod breakdown;
pub mod crossval;
pub mod diagnostics;
pub mod experiments;
pub mod fit;
pub mod model;
pub mod pareto;
pub mod roofline;
pub mod service;
pub mod stats;
pub mod whatif;

pub use ablation::{model_structure_ablation, AblationRow, FittedPredictor, ModelStructure};
pub use autotune::{autotune_microbenchmarks, AutotuneOutcome, StrategyResult};
pub use bootstrap::{bootstrap_fit, BootstrapReport, Interval};
pub use breakdown::{BreakdownReport, EnergyShare};
pub use crossval::{holdout_validation, leave_one_setting_out, ValidationReport};
pub use diagnostics::{mean_abs_error, DiagnosticReport};
pub use fit::{
    fit_model, try_fit_model, try_fit_model_with, FitDiagnostics, FitOptions, FitReport,
};
pub use model::{EnergyModel, ModelBreakdown};
pub use pareto::{OperatingPointMeasure, TradeoffAnalysis};
pub use roofline::EnergyRoofline;
pub use service::{
    best_index, predict_grid, service_grid, try_fit_from_sweep, GridPrediction, ModelFit,
};
pub use stats::ErrorStats;
pub use whatif::{prefetch_whatif, PrefetchScenario, PrefetchVerdict};
