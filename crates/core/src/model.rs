//! The fitted DVFS-aware energy model and its predictions.

use tk1_sim::{OpClass, OpVector, Setting, ALL_CLASSES, NUM_OP_CLASSES};

pub use tk1_sim::ops::ALL_CLASSES as MODEL_CLASSES;

/// A fitted instance of the paper's equation 9, extended to the full
/// operation taxonomy (SP/DP/integer compute; SM/L1/L2/DRAM data).
///
/// All `ĉ0` coefficients are in pJ/V²; leakage coefficients in W/V;
/// `P_misc` in W.  Per-op energies are recovered as `ε = ĉ0·V²`
/// (equations 6–7) and constant power as
/// `π0 = c1,proc·V_proc + c1,mem·V_mem + P_misc` (equation 8).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// `ĉ0` per op class, pJ/V², indexed by [`OpClass::index`].
    pub c0_pj_per_v2: [f64; NUM_OP_CLASSES],
    /// Processor leakage coefficient, W/V.
    pub c1_proc_w_per_v: f64,
    /// Memory leakage coefficient, W/V.
    pub c1_mem_w_per_v: f64,
    /// Operation-independent constant power, W.
    pub p_misc_w: f64,
}

impl EnergyModel {
    /// The model's estimate of the energy of one operation at `setting`,
    /// in joules: `ĉ0·V²` with the domain voltage of the op class.
    pub fn energy_per_op_j(&self, class: OpClass, setting: Setting) -> f64 {
        let op = setting.operating_point();
        let v = if class.is_mem_domain() { op.mem.voltage_v } else { op.core.voltage_v };
        self.c0_pj_per_v2[class.index()] * 1e-12 * v * v
    }

    /// The model's constant power `π0` at `setting`, W (equation 8).
    pub fn constant_power_w(&self, setting: Setting) -> f64 {
        let op = setting.operating_point();
        self.c1_proc_w_per_v * op.core.voltage_v
            + self.c1_mem_w_per_v * op.mem.voltage_v
            + self.p_misc_w
    }

    /// Predicted total energy for a program with counts `ops` that ran
    /// for `time_s` seconds at `setting` (equation 9).
    pub fn predict_energy_j(&self, ops: &OpVector, setting: Setting, time_s: f64) -> f64 {
        self.predict_breakdown(ops, setting, time_s).total_j()
    }

    /// Predicted energy decomposed by source — the quantity behind the
    /// paper's Figures 6 and 7.
    pub fn predict_breakdown(
        &self,
        ops: &OpVector,
        setting: Setting,
        time_s: f64,
    ) -> ModelBreakdown {
        let mut dynamic_j = [0.0; NUM_OP_CLASSES];
        for &class in &ALL_CLASSES {
            dynamic_j[class.index()] = ops.get(class) * self.energy_per_op_j(class, setting);
        }
        ModelBreakdown { dynamic_j, constant_j: self.constant_power_w(setting) * time_s }
    }

    /// The derived per-op energy and constant-power columns of the
    /// paper's Table I for one setting: `(ε_SP, ε_DP, ε_Int, ε_SM, ε_L2,
    /// ε_Mem, π0)` in (pJ, ..., W).
    pub fn table1_row(&self, setting: Setting) -> (f64, f64, f64, f64, f64, f64, f64) {
        let pj = |c: OpClass| self.energy_per_op_j(c, setting) * 1e12;
        (
            pj(OpClass::FlopSp),
            pj(OpClass::FlopDp),
            pj(OpClass::Int),
            pj(OpClass::Shared),
            pj(OpClass::L2),
            pj(OpClass::Dram),
            self.constant_power_w(setting),
        )
    }
}

/// Model-predicted energy decomposition of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBreakdown {
    /// Dynamic energy per op class, J.
    pub dynamic_j: [f64; NUM_OP_CLASSES],
    /// Constant-power energy `π0·T`, J.
    pub constant_j: f64,
}

impl ModelBreakdown {
    /// Total predicted energy, J.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j.iter().sum::<f64>() + self.constant_j
    }

    /// Dynamic energy of the compute classes (the paper's
    /// "Computation"), J.
    pub fn computation_j(&self) -> f64 {
        tk1_sim::COMPUTE_CLASSES.iter().map(|&c| self.dynamic_j[c.index()]).sum()
    }

    /// Dynamic energy of the memory classes (the paper's "Data"), J.
    pub fn data_j(&self) -> f64 {
        tk1_sim::MEMORY_CLASSES.iter().map(|&c| self.dynamic_j[c.index()]).sum()
    }

    /// Energy of one class, J.
    pub fn class_j(&self, class: OpClass) -> f64 {
        self.dynamic_j[class.index()]
    }

    /// Share of total energy attributed to constant power, in `[0, 1]`.
    pub fn constant_share(&self) -> f64 {
        let total = self.total_j();
        if total > 0.0 {
            self.constant_j / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model whose constants equal the simulator's ideal ground truth.
    fn truth_model() -> EnergyModel {
        let t = tk1_sim::TruthConstants::ideal();
        EnergyModel {
            c0_pj_per_v2: t.c0_pj_per_v2,
            c1_proc_w_per_v: t.c1_proc_w_per_v,
            c1_mem_w_per_v: t.c1_mem_w_per_v,
            p_misc_w: t.p_misc_w,
        }
    }

    #[test]
    fn per_op_energy_matches_table1() {
        let m = truth_model();
        let s = Setting::max_performance();
        let (sp, dp, int, sm, l2, mem, _pi0) = m.table1_row(s);
        assert!((sp - 29.0).abs() < 0.1);
        assert!((dp - 139.1).abs() < 0.2);
        assert!((int - 60.0).abs() < 0.1);
        assert!((sm - 35.4).abs() < 0.1);
        assert!((l2 - 90.2).abs() < 0.2);
        assert!((mem - 377.0).abs() < 0.5);
    }

    #[test]
    fn constant_power_follows_equation_8() {
        let m = truth_model();
        let s = Setting::from_frequencies(396.0, 204.0).unwrap();
        let expected = m.c1_proc_w_per_v * 0.770 + m.c1_mem_w_per_v * 0.800 + m.p_misc_w;
        assert!((m.constant_power_w(s) - expected).abs() < 1e-12);
    }

    #[test]
    fn prediction_matches_ideal_simulator() {
        // The model with truth constants must predict the ideal device's
        // energy to measurement precision — the defining consistency
        // property of the whole pipeline.
        use tk1_sim::{Device, KernelProfile};
        let m = truth_model();
        let mut dev = Device::ideal(1);
        let k = KernelProfile::new(
            "probe",
            OpVector::from_pairs(&[
                (OpClass::FlopSp, 3e9),
                (OpClass::Int, 2e9),
                (OpClass::L2, 1e8),
                (OpClass::Dram, 2e8),
            ]),
        );
        for s in [Setting::max_performance(), Setting::from_frequencies(396.0, 528.0).unwrap()] {
            dev.set_operating_point(s);
            let e = dev.execute(&k);
            let predicted = m.predict_energy_j(&k.ops, s, e.duration_s);
            let rel = (predicted - e.true_energy_j()).abs() / e.true_energy_j();
            assert!(rel < 1e-9, "exact at {}: rel {rel}", s.label());
        }
    }

    #[test]
    fn breakdown_partitions_total() {
        let m = truth_model();
        let ops = OpVector::from_pairs(&[(OpClass::FlopSp, 1e9), (OpClass::Dram, 1e8)]);
        let s = Setting::max_performance();
        let b = m.predict_breakdown(&ops, s, 0.5);
        let total = b.computation_j() + b.data_j() + b.constant_j;
        assert!((total - b.total_j()).abs() < 1e-12);
        assert!(b.constant_share() > 0.0 && b.constant_share() < 1.0);
    }

    #[test]
    fn zero_time_zero_ops_is_zero_energy() {
        let m = truth_model();
        let b = m.predict_breakdown(&OpVector::zero(), Setting::max_performance(), 0.0);
        assert_eq!(b.total_j(), 0.0);
        assert_eq!(b.constant_share(), 0.0);
    }

    #[test]
    fn dram_uses_memory_voltage() {
        let m = truth_model();
        // Same mem frequency, different core frequency: DRAM op energy
        // must not change.
        let a = m.energy_per_op_j(OpClass::Dram, Setting::from_frequencies(852.0, 528.0).unwrap());
        let b = m.energy_per_op_j(OpClass::Dram, Setting::from_frequencies(396.0, 528.0).unwrap());
        assert_eq!(a, b);
        // And SP must not change with memory frequency.
        let c =
            m.energy_per_op_j(OpClass::FlopSp, Setting::from_frequencies(852.0, 924.0).unwrap());
        let d = m.energy_per_op_j(OpClass::FlopSp, Setting::from_frequencies(852.0, 68.0).unwrap());
        assert_eq!(c, d);
    }
}
