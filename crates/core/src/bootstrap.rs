//! Bootstrap uncertainty quantification for the fitted constants.
//!
//! The NNLS point estimates of Table I say nothing about how well each
//! coefficient is pinned down by the data — and as DESIGN.md §6 notes,
//! coefficients of constant-power-dominated benchmark families (ε_DP
//! foremost) carry an error amplification of roughly `E_total/E_dyn`.
//! Case-resampling bootstrap makes that conditioning visible: refit on
//! resampled datasets and report per-coefficient percentile intervals.
//! An analyst replicating the paper should publish these alongside
//! Table I.

use crate::fit::fit_model;
use dvfs_microbench::Sample;
use tk1_sim::rng::Noise;
use tk1_sim::{OpClass, Setting, NUM_OP_CLASSES};

/// A percentile confidence interval for one coefficient.
#[derive(Debug, Clone, Copy)]
pub struct Interval {
    /// Point estimate (fit on the full dataset).
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl Interval {
    /// Relative half-width `(hi − lo) / (2·estimate)` — the conditioning
    /// figure of merit (0 = perfectly identified).
    pub fn relative_half_width(&self) -> f64 {
        if self.estimate.abs() < f64::MIN_POSITIVE {
            f64::INFINITY
        } else {
            (self.hi - self.lo) / (2.0 * self.estimate.abs())
        }
    }
}

/// Bootstrap intervals for every model constant.
#[derive(Debug, Clone)]
pub struct BootstrapReport {
    /// Per-op-class `ĉ0` intervals (pJ/V²).
    pub c0: [Interval; NUM_OP_CLASSES],
    /// Processor leakage interval (W/V).
    pub c1_proc: Interval,
    /// Memory leakage interval (W/V).
    pub c1_mem: Interval,
    /// Constant misc power interval (W).
    pub p_misc: Interval,
    /// Number of bootstrap replicates.
    pub replicates: usize,
    /// Confidence level (e.g. 0.90).
    pub confidence: f64,
}

impl BootstrapReport {
    /// Runs a case-resampling bootstrap: `replicates` refits on datasets
    /// drawn with replacement from `samples`, with `confidence`-level
    /// percentile intervals.
    pub fn run(
        samples: &[&Sample],
        replicates: usize,
        confidence: f64,
        seed: u64,
    ) -> BootstrapReport {
        assert!(replicates >= 8, "too few replicates for percentiles");
        assert!((0.5..1.0).contains(&confidence), "confidence in [0.5, 1)");
        let point = fit_model(samples.iter().copied());
        let mut noise = Noise::new(seed ^ 0xB007);

        // Collect replicate coefficient vectors (10 coefficients each).
        let mut replicate_values: Vec<[f64; NUM_OP_CLASSES + 3]> = Vec::with_capacity(replicates);
        for _ in 0..replicates {
            let resampled: Vec<&Sample> = (0..samples.len())
                .map(|_| samples[(noise.uniform() * samples.len() as f64) as usize % samples.len()])
                .collect();
            let fit = fit_model(resampled);
            let m = &fit.model;
            let mut row = [0.0; NUM_OP_CLASSES + 3];
            row[..NUM_OP_CLASSES].copy_from_slice(&m.c0_pj_per_v2);
            row[NUM_OP_CLASSES] = m.c1_proc_w_per_v;
            row[NUM_OP_CLASSES + 1] = m.c1_mem_w_per_v;
            row[NUM_OP_CLASSES + 2] = m.p_misc_w;
            replicate_values.push(row);
        }

        let interval = |idx: usize, estimate: f64| -> Interval {
            let mut values: Vec<f64> = replicate_values.iter().map(|r| r[idx]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let alpha = (1.0 - confidence) / 2.0;
            let pick = |q: f64| -> f64 {
                let pos = q * (values.len() - 1) as f64;
                values[pos.round() as usize]
            };
            Interval { estimate, lo: pick(alpha), hi: pick(1.0 - alpha) }
        };

        let c0 = std::array::from_fn(|k| interval(k, point.model.c0_pj_per_v2[k]));
        BootstrapReport {
            c0,
            c1_proc: interval(NUM_OP_CLASSES, point.model.c1_proc_w_per_v),
            c1_mem: interval(NUM_OP_CLASSES + 1, point.model.c1_mem_w_per_v),
            p_misc: interval(NUM_OP_CLASSES + 2, point.model.p_misc_w),
            replicates,
            confidence,
        }
    }

    /// Interval of one op class's `ĉ0`.
    pub fn c0_of(&self, class: OpClass) -> Interval {
        self.c0[class.index()]
    }

    /// Interval of the derived constant power `π0` at a setting (sum of
    /// the three constant terms; interval endpoints are combined
    /// conservatively).
    pub fn constant_power_at(&self, setting: Setting) -> Interval {
        let op = setting.operating_point();
        let combine = |f: fn(&Interval) -> f64| {
            f(&self.c1_proc) * op.core.voltage_v
                + f(&self.c1_mem) * op.mem.voltage_v
                + f(&self.p_misc)
        };
        Interval { estimate: combine(|i| i.estimate), lo: combine(|i| i.lo), hi: combine(|i| i.hi) }
    }

    /// The model constants formatted with their intervals.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for class in tk1_sim::ops::ALL_CLASSES {
            let i = self.c0_of(class);
            out.push_str(&format!(
                "ĉ0[{:>7}] = {:8.2} pJ/V²  [{:8.2}, {:8.2}]  (±{:.0}%)\n",
                class.name(),
                i.estimate,
                i.lo,
                i.hi,
                i.relative_half_width() * 100.0
            ));
        }
        out.push_str(&format!(
            "c1,proc    = {:8.3} W/V    [{:8.3}, {:8.3}]\n",
            self.c1_proc.estimate, self.c1_proc.lo, self.c1_proc.hi
        ));
        out.push_str(&format!(
            "c1,mem     = {:8.3} W/V    [{:8.3}, {:8.3}]\n",
            self.c1_mem.estimate, self.c1_mem.lo, self.c1_mem.hi
        ));
        out.push_str(&format!(
            "P_misc     = {:8.3} W      [{:8.3}, {:8.3}]\n",
            self.p_misc.estimate, self.p_misc.lo, self.p_misc.hi
        ));
        out
    }
}

/// Convenience alias used by the harness.
pub fn bootstrap_fit(
    dataset: &dvfs_microbench::Dataset,
    replicates: usize,
    seed: u64,
) -> BootstrapReport {
    let training: Vec<&Sample> = dataset.training().collect();
    BootstrapReport::run(&training, replicates, 0.90, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EnergyModel;
    use dvfs_microbench::{run_sweep, SweepConfig};

    fn report(replicates: usize) -> (BootstrapReport, EnergyModel) {
        let ds = run_sweep(&SweepConfig { seed: 404, faults: None, ..SweepConfig::default() });
        let model = fit_model(ds.training()).model;
        (bootstrap_fit(&ds, replicates, 99), model)
    }

    #[test]
    fn intervals_bracket_the_point_estimate() {
        let (r, model) = report(24);
        for class in tk1_sim::ops::ALL_CLASSES {
            let i = r.c0_of(class);
            assert_eq!(i.estimate, model.c0_pj_per_v2[class.index()]);
            assert!(i.lo <= i.hi);
            // The point estimate usually sits inside the interval; allow
            // the small percentile slack of finite replicates.
            assert!(i.estimate >= i.lo * 0.9 && i.estimate <= i.hi * 1.1);
        }
    }

    #[test]
    fn dp_is_the_worst_conditioned_flop_coefficient() {
        // The DESIGN.md §6 finding, measured: ε_DP's interval is wider
        // (relatively) than ε_SP's, because DP benchmark energy is
        // constant-power-dominated on the TK1.
        let (r, _) = report(32);
        let sp = r.c0_of(OpClass::FlopSp).relative_half_width();
        let dp = r.c0_of(OpClass::FlopDp).relative_half_width();
        assert!(dp > sp, "DP ±{:.1}% vs SP ±{:.1}%", dp * 100.0, sp * 100.0);
    }

    #[test]
    fn constant_power_interval_is_tight() {
        // π0 is the best-identified quantity (every sample constrains it).
        let (r, _) = report(24);
        let pi0 = r.constant_power_at(Setting::max_performance());
        assert!(pi0.lo <= pi0.estimate && pi0.estimate <= pi0.hi);
        assert!(
            (pi0.hi - pi0.lo) / pi0.estimate < 0.15,
            "π0 interval width {:.3}",
            (pi0.hi - pi0.lo) / pi0.estimate
        );
    }

    #[test]
    fn summary_lists_all_constants() {
        let (r, _) = report(12);
        let s = r.summary();
        assert_eq!(s.lines().count(), 10);
        assert!(s.contains("ĉ0[     SP]"));
        assert!(s.contains("P_misc"));
    }

    #[test]
    #[should_panic(expected = "replicates")]
    fn too_few_replicates_rejected() {
        let ds = run_sweep(&SweepConfig {
            kinds: vec![dvfs_microbench::MicrobenchKind::L2],
            faults: None,
            ..SweepConfig::default()
        });
        let _ = bootstrap_fit(&ds, 2, 1);
    }
}
