//! The prefetch what-if analysis sketched in the paper's conclusion.
//!
//! "If we could estimate the ratio between used and unused prefetched
//! data, we could estimate how much energy could be saved by turning
//! prefetching off (from not loading unused data) and how that might
//! impact performance — a performance loss could increase total energy
//! (from constant power)."
//!
//! This module turns that paragraph into a calculator: given a program's
//! DRAM traffic, the fraction of prefetched words that go unused, and the
//! slowdown disabling prefetch would cause, it compares the energy of the
//! two configurations under the fitted model.

use crate::model::EnergyModel;
use tk1_sim::{OpClass, OpVector, Setting};

/// Inputs to the prefetch trade-off.
#[derive(Debug, Clone)]
pub struct PrefetchScenario {
    /// The program's op counts *with prefetching on*.
    pub ops: OpVector,
    /// Its execution time with prefetching on, s.
    pub time_s: f64,
    /// Fraction of DRAM words that were prefetched but never used,
    /// in `[0, 1)`.
    pub unused_fraction: f64,
    /// Multiplicative slowdown from disabling prefetch (>= 1.0): exposed
    /// latency makes the program take `slowdown × time_s`.
    pub slowdown: f64,
}

/// The calculator's verdict.
#[derive(Debug, Clone)]
pub struct PrefetchVerdict {
    /// Energy with prefetching on, J.
    pub energy_on_j: f64,
    /// Energy with prefetching off, J.
    pub energy_off_j: f64,
    /// `energy_on - energy_off` (positive = disabling saves energy), J.
    pub savings_j: f64,
    /// DRAM energy avoided by not loading unused words, J.
    pub avoided_dram_j: f64,
    /// Constant-power energy added by the slowdown, J.
    pub added_constant_j: f64,
    /// The break-even slowdown: disabling prefetch saves energy only if
    /// the actual slowdown is below this.
    pub breakeven_slowdown: f64,
}

impl PrefetchVerdict {
    /// True when disabling prefetch is the energy-optimal choice.
    pub fn should_disable(&self) -> bool {
        self.savings_j > 0.0
    }
}

/// Evaluates the trade-off at `setting` under `model`.
pub fn prefetch_whatif(
    model: &EnergyModel,
    scenario: &PrefetchScenario,
    setting: Setting,
) -> PrefetchVerdict {
    assert!((0.0..1.0).contains(&scenario.unused_fraction), "unused fraction must be in [0, 1)");
    assert!(scenario.slowdown >= 1.0, "disabling prefetch cannot speed the program up here");

    let energy_on_j = model.predict_energy_j(&scenario.ops, setting, scenario.time_s);

    // Off: the unused DRAM words are not loaded; time stretches.
    let mut ops_off = scenario.ops;
    let dram = ops_off.get(OpClass::Dram);
    ops_off.set(OpClass::Dram, dram * (1.0 - scenario.unused_fraction));
    let time_off = scenario.time_s * scenario.slowdown;
    let energy_off_j = model.predict_energy_j(&ops_off, setting, time_off);

    let avoided_dram_j =
        dram * scenario.unused_fraction * model.energy_per_op_j(OpClass::Dram, setting);
    let added_constant_j = model.constant_power_w(setting) * (time_off - scenario.time_s);

    // Break-even: avoided = π0·(s-1)·T  =>  s = 1 + avoided/(π0·T).
    let pi0t = model.constant_power_w(setting) * scenario.time_s;
    let breakeven_slowdown = 1.0 + if pi0t > 0.0 { avoided_dram_j / pi0t } else { f64::INFINITY };

    PrefetchVerdict {
        energy_on_j,
        energy_off_j,
        savings_j: energy_on_j - energy_off_j,
        avoided_dram_j,
        added_constant_j,
        breakeven_slowdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        let t = tk1_sim::TruthConstants::ideal();
        EnergyModel {
            c0_pj_per_v2: t.c0_pj_per_v2,
            c1_proc_w_per_v: t.c1_proc_w_per_v,
            c1_mem_w_per_v: t.c1_mem_w_per_v,
            p_misc_w: t.p_misc_w,
        }
    }

    fn scenario(unused: f64, slowdown: f64) -> PrefetchScenario {
        PrefetchScenario {
            ops: OpVector::from_pairs(&[(OpClass::FlopSp, 1e9), (OpClass::Dram, 5e8)]),
            time_s: 0.2,
            unused_fraction: unused,
            slowdown,
        }
    }

    #[test]
    fn no_slowdown_and_waste_means_savings() {
        let v = prefetch_whatif(&model(), &scenario(0.3, 1.0), Setting::max_performance());
        assert!(v.should_disable());
        assert!((v.savings_j - v.avoided_dram_j).abs() < 1e-12);
        assert_eq!(v.added_constant_j, 0.0);
    }

    #[test]
    fn large_slowdown_negates_savings() {
        let v = prefetch_whatif(&model(), &scenario(0.1, 1.5), Setting::max_performance());
        assert!(!v.should_disable(), "constant power of the 50% slowdown dwarfs DRAM savings");
        assert!(v.added_constant_j > v.avoided_dram_j);
    }

    #[test]
    fn breakeven_is_consistent() {
        let m = model();
        let s = Setting::max_performance();
        let base = scenario(0.3, 1.0);
        let v = prefetch_whatif(&m, &base, s);
        // Slightly below break-even: still saves.  Slightly above: loses.
        let below = PrefetchScenario { slowdown: v.breakeven_slowdown * 0.999, ..base.clone() };
        let above = PrefetchScenario { slowdown: v.breakeven_slowdown * 1.001, ..base };
        assert!(prefetch_whatif(&m, &below, s).should_disable());
        assert!(!prefetch_whatif(&m, &above, s).should_disable());
    }

    #[test]
    fn zero_unused_fraction_never_saves() {
        let v = prefetch_whatif(&model(), &scenario(0.0, 1.01), Setting::max_performance());
        assert!(!v.should_disable());
        assert_eq!(v.avoided_dram_j, 0.0);
    }

    #[test]
    #[should_panic(expected = "unused fraction")]
    fn invalid_fraction_rejected() {
        let _ = prefetch_whatif(&model(), &scenario(1.0, 1.0), Setting::max_performance());
    }

    #[test]
    #[should_panic(expected = "cannot speed")]
    fn speedup_rejected() {
        let _ = prefetch_whatif(&model(), &scenario(0.1, 0.9), Setting::max_performance());
    }
}
