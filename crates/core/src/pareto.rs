//! Energy/time trade-off analysis: Pareto frontiers and the ED/ED²
//! products.
//!
//! The paper optimizes pure energy; the surrounding HPC literature (its
//! Related Work cites Ge & Cameron's power-aware speedup, iso-energy
//! efficiency, etc.) usually navigates the energy-time *trade-off*
//! instead, via the energy-delay product (EDP) and energy-delay-squared
//! (ED²P).  This module adds those lenses over the same measurement
//! matrix the autotuner already collects, as a natural extension
//! experiment: where do the pure-energy, EDP, ED²P and pure-time optima
//! sit relative to each other on the DVFS grid?

use tk1_sim::Setting;

/// One measured (setting, time, energy) operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPointMeasure {
    /// The DVFS setting.
    pub setting: Setting,
    /// Measured execution time, s.
    pub time_s: f64,
    /// Measured (or predicted) energy, J.
    pub energy_j: f64,
}

impl OperatingPointMeasure {
    /// Energy-delay product, J·s.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }

    /// Energy-delay-squared product, J·s².
    pub fn ed2p(&self) -> f64 {
        self.energy_j * self.time_s * self.time_s
    }
}

/// The trade-off analysis over a set of measured operating points.
#[derive(Debug, Clone)]
pub struct TradeoffAnalysis {
    points: Vec<OperatingPointMeasure>,
}

impl TradeoffAnalysis {
    /// Wraps a measurement set (at least one point).
    pub fn new(points: Vec<OperatingPointMeasure>) -> Self {
        assert!(!points.is_empty(), "need at least one operating point");
        assert!(
            points.iter().all(|p| p.time_s > 0.0 && p.energy_j > 0.0),
            "times and energies must be positive"
        );
        TradeoffAnalysis { points }
    }

    /// All points.
    pub fn points(&self) -> &[OperatingPointMeasure] {
        &self.points
    }

    fn argmin_by(&self, key: impl Fn(&OperatingPointMeasure) -> f64) -> OperatingPointMeasure {
        *self
            .points
            .iter()
            .min_by(|a, b| key(a).partial_cmp(&key(b)).expect("finite"))
            .expect("non-empty")
    }

    /// The minimum-energy point.
    pub fn min_energy(&self) -> OperatingPointMeasure {
        self.argmin_by(|p| p.energy_j)
    }

    /// The minimum-time point.
    pub fn min_time(&self) -> OperatingPointMeasure {
        self.argmin_by(|p| p.time_s)
    }

    /// The minimum-EDP point.
    pub fn min_edp(&self) -> OperatingPointMeasure {
        self.argmin_by(|p| p.edp())
    }

    /// The minimum-ED²P point.
    pub fn min_ed2p(&self) -> OperatingPointMeasure {
        self.argmin_by(|p| p.ed2p())
    }

    /// The energy/time Pareto frontier, sorted by increasing time.
    ///
    /// A point is on the frontier iff no other point is at least as fast
    /// *and* at least as efficient (with one strict).
    pub fn pareto_frontier(&self) -> Vec<OperatingPointMeasure> {
        let mut sorted = self.points.clone();
        sorted.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .expect("finite")
                .then(a.energy_j.partial_cmp(&b.energy_j).expect("finite"))
        });
        let mut frontier: Vec<OperatingPointMeasure> = Vec::new();
        let mut best_energy = f64::INFINITY;
        for p in sorted {
            if p.energy_j < best_energy {
                best_energy = p.energy_j;
                frontier.push(p);
            }
        }
        frontier
    }

    /// How much energy the minimum-time point forfeits relative to the
    /// minimum-energy point (fraction; the race-to-halt penalty).
    pub fn race_to_halt_penalty(&self) -> f64 {
        self.min_time().energy_j / self.min_energy().energy_j - 1.0
    }

    /// How much time the minimum-energy point forfeits relative to the
    /// minimum-time point (fraction; the cost of frugality).
    pub fn frugality_penalty(&self) -> f64 {
        self.min_energy().time_s / self.min_time().time_s - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(core_idx: usize, time_s: f64, energy_j: f64) -> OperatingPointMeasure {
        OperatingPointMeasure { setting: Setting::new(core_idx, 0), time_s, energy_j }
    }

    #[test]
    fn products_compute() {
        let p = pt(0, 2.0, 3.0);
        assert_eq!(p.edp(), 6.0);
        assert_eq!(p.ed2p(), 12.0);
    }

    #[test]
    fn optima_are_found() {
        let a = TradeoffAnalysis::new(vec![
            pt(0, 1.0, 10.0), // fastest
            pt(1, 2.0, 4.0),  // min EDP (8) and min energy... energy 4
            pt(2, 4.0, 3.0),  // min energy
        ]);
        assert_eq!(a.min_time().setting, Setting::new(0, 0));
        assert_eq!(a.min_energy().setting, Setting::new(2, 0));
        assert_eq!(a.min_edp().setting, Setting::new(1, 0));
        // ED²P favors speed more: 10, 16, 48 -> fastest wins.
        assert_eq!(a.min_ed2p().setting, Setting::new(0, 0));
    }

    #[test]
    fn edp_optimum_sits_between_time_and_energy_optima() {
        // The canonical ordering: t(min time) <= t(min EDP) <= t(min E).
        let a = TradeoffAnalysis::new(vec![
            pt(0, 1.0, 12.0),
            pt(1, 1.5, 7.0),
            pt(2, 2.5, 5.0),
            pt(3, 5.0, 4.5),
        ]);
        let t_fast = a.min_time().time_s;
        let t_edp = a.min_edp().time_s;
        let t_energy = a.min_energy().time_s;
        assert!(t_fast <= t_edp && t_edp <= t_energy);
    }

    #[test]
    fn pareto_frontier_is_monotone_and_complete() {
        let a = TradeoffAnalysis::new(vec![
            pt(0, 1.0, 10.0),
            pt(1, 2.0, 6.0),
            pt(2, 1.5, 12.0), // dominated by (1.0, 10.0)? no: slower AND more energy than pt0 -> dominated
            pt(3, 3.0, 5.0),
            pt(4, 4.0, 5.5), // dominated by (3.0, 5.0)
        ]);
        let f = a.pareto_frontier();
        let settings: Vec<usize> = f.iter().map(|p| p.setting.core_idx).collect();
        assert_eq!(settings, vec![0, 1, 3]);
        // Monotone: time increases, energy decreases.
        for w in f.windows(2) {
            assert!(w[0].time_s < w[1].time_s);
            assert!(w[0].energy_j > w[1].energy_j);
        }
        // Extremes are always on the frontier.
        assert_eq!(f.first().unwrap().setting, a.min_time().setting);
        assert_eq!(f.last().unwrap().setting, a.min_energy().setting);
    }

    #[test]
    fn penalties_are_consistent() {
        let a = TradeoffAnalysis::new(vec![pt(0, 1.0, 10.0), pt(1, 2.0, 8.0)]);
        assert!((a.race_to_halt_penalty() - 0.25).abs() < 1e-12);
        assert!((a.frugality_penalty() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let a = TradeoffAnalysis::new(vec![pt(0, 1.0, 1.0)]);
        assert_eq!(a.pareto_frontier().len(), 1);
        assert_eq!(a.race_to_halt_penalty(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        let _ = TradeoffAnalysis::new(vec![]);
    }

    #[test]
    fn real_measurement_matrix_orders_sanely() {
        // Measure a mid-intensity SP kernel across all settings and check
        // the canonical optima ordering holds on real (simulated) data.
        use dvfs_microbench::MicrobenchKind;
        use powermon_sim::PowerMon;
        use tk1_sim::Device;
        let mb = MicrobenchKind::SinglePrecision.instance(32.0);
        let mut dev = Device::new(5);
        let mut meter = PowerMon::new(6);
        let points: Vec<OperatingPointMeasure> = Setting::all()
            .map(|s| {
                dev.set_operating_point(s);
                let m = meter.measure(&mut dev, mb.kernel());
                OperatingPointMeasure {
                    setting: s,
                    time_s: m.execution.duration_s,
                    energy_j: m.measured_energy_j,
                }
            })
            .collect();
        let a = TradeoffAnalysis::new(points);
        let t_fast = a.min_time().time_s;
        let t_edp = a.min_edp().time_s;
        let t_energy = a.min_energy().time_s;
        assert!(t_fast <= t_edp + 1e-12);
        assert!(t_edp <= t_energy + 1e-12);
        assert!(!a.pareto_frontier().is_empty());
        assert!(a.race_to_halt_penalty() >= 0.0);
    }
}
