//! Regression diagnostics for the fitted model — the Rust counterpart of
//! the paper's published R analysis scripts.
//!
//! After fitting, an analyst wants to know more than the coefficient
//! values: how much variance the model explains (R²), whether residuals
//! are structured (per-family and per-setting breakdowns expose exactly
//! the misspecifications DESIGN.md injects), and which samples are
//! outliers worth re-measuring.

use crate::fit::predict;
use crate::model::EnergyModel;
use crate::stats::relative_error;
use dvfs_microbench::{Dataset, Sample};
use tk1_sim::Setting;

/// One residual record.
#[derive(Debug, Clone)]
pub struct Residual {
    /// Index into the dataset.
    pub index: usize,
    /// Benchmark family, if any.
    pub family: Option<String>,
    /// The setting.
    pub setting: Setting,
    /// Predicted energy, J.
    pub predicted_j: f64,
    /// Measured energy, J.
    pub measured_j: f64,
}

impl Residual {
    /// Signed relative residual (prediction minus measurement over
    /// measurement).
    pub fn relative(&self) -> f64 {
        (self.predicted_j - self.measured_j) / self.measured_j
    }
}

/// Grouped residual summary.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// Group label (family name or setting label).
    pub label: String,
    /// Number of samples in the group.
    pub count: usize,
    /// Mean signed relative residual (bias).
    pub bias: f64,
    /// Mean absolute relative residual.
    pub mean_abs: f64,
}

/// Full diagnostic report of a model over a dataset.
#[derive(Debug, Clone)]
pub struct DiagnosticReport {
    /// Per-sample residuals.
    pub residuals: Vec<Residual>,
    /// Coefficient of determination over energies.
    pub r_squared: f64,
    /// Residual summaries grouped by benchmark family.
    pub by_family: Vec<GroupSummary>,
    /// Residual summaries grouped by setting.
    pub by_setting: Vec<GroupSummary>,
}

impl DiagnosticReport {
    /// Evaluates `model` against every sample in `dataset`.
    pub fn new(model: &EnergyModel, dataset: &Dataset) -> Self {
        assert!(!dataset.is_empty(), "empty dataset");
        let residuals: Vec<Residual> = dataset
            .samples
            .iter()
            .enumerate()
            .map(|(index, s)| Residual {
                index,
                family: s.kind.clone(),
                setting: s.setting,
                predicted_j: predict(model, s),
                measured_j: s.energy_j,
            })
            .collect();

        let mean_measured =
            residuals.iter().map(|r| r.measured_j).sum::<f64>() / residuals.len() as f64;
        let ss_res: f64 = residuals.iter().map(|r| (r.measured_j - r.predicted_j).powi(2)).sum();
        let ss_tot: f64 = residuals.iter().map(|r| (r.measured_j - mean_measured).powi(2)).sum();
        let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };

        let by_family =
            group_by(&residuals, |r| r.family.clone().unwrap_or_else(|| "application".into()));
        let by_setting = group_by(&residuals, |r| r.setting.label());

        DiagnosticReport { residuals, r_squared, by_family, by_setting }
    }

    /// The `n` worst samples by absolute relative residual, worst first.
    pub fn worst(&self, n: usize) -> Vec<&Residual> {
        let mut refs: Vec<&Residual> = self.residuals.iter().collect();
        refs.sort_by(|a, b| b.relative().abs().partial_cmp(&a.relative().abs()).expect("finite"));
        refs.truncate(n);
        refs
    }

    /// A text histogram of signed relative residuals.
    pub fn residual_histogram(&self, bins: usize, width: usize) -> String {
        assert!(bins >= 2);
        let rels: Vec<f64> = self.residuals.iter().map(|r| r.relative()).collect();
        let lo = rels.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rels.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);
        let mut counts = vec![0usize; bins];
        for r in &rels {
            let b = (((r - lo) / span) * bins as f64) as usize;
            counts[b.min(bins - 1)] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in counts.iter().enumerate() {
            let left = lo + span * i as f64 / bins as f64;
            let bar = (c * width).div_ceil(max);
            out.push_str(&format!(
                "{:>8.2}% |{}  {}\n",
                left * 100.0,
                "#".repeat(if c > 0 { bar } else { 0 }),
                c
            ));
        }
        out
    }
}

fn group_by(residuals: &[Residual], key: impl Fn(&Residual) -> String) -> Vec<GroupSummary> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: std::collections::HashMap<String, Vec<f64>> = std::collections::HashMap::new();
    for r in residuals {
        let k = key(r);
        if !groups.contains_key(&k) {
            order.push(k.clone());
        }
        groups.entry(k).or_default().push(r.relative());
    }
    order
        .into_iter()
        .map(|label| {
            let rels = &groups[&label];
            let n = rels.len() as f64;
            GroupSummary {
                count: rels.len(),
                bias: rels.iter().sum::<f64>() / n,
                mean_abs: rels.iter().map(|r| r.abs()).sum::<f64>() / n,
                label,
            }
        })
        .collect()
}

/// Convenience: the mean absolute relative error of a model over
/// arbitrary samples.
pub fn mean_abs_error<'a>(
    model: &EnergyModel,
    samples: impl IntoIterator<Item = &'a Sample>,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for s in samples {
        sum += relative_error(predict(model, s), s.energy_j);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_model;
    use dvfs_microbench::{run_sweep, SweepConfig};

    fn fitted() -> (EnergyModel, Dataset) {
        let ds = run_sweep(&SweepConfig { seed: 77, faults: None, ..SweepConfig::default() });
        (fit_model(ds.training()).model, ds)
    }

    #[test]
    fn r_squared_is_high_for_a_good_fit() {
        let (model, ds) = fitted();
        let report = DiagnosticReport::new(&model, &ds);
        assert!(report.r_squared > 0.99, "R² {:.4}", report.r_squared);
        assert_eq!(report.residuals.len(), ds.len());
    }

    #[test]
    fn family_groups_cover_all_families() {
        let (model, ds) = fitted();
        let report = DiagnosticReport::new(&model, &ds);
        assert_eq!(report.by_family.len(), 5);
        let total: usize = report.by_family.iter().map(|g| g.count).sum();
        assert_eq!(total, ds.len());
        for g in &report.by_family {
            assert!(g.mean_abs >= g.bias.abs() - 1e-12);
        }
    }

    #[test]
    fn setting_groups_cover_all_settings() {
        let (model, ds) = fitted();
        let report = DiagnosticReport::new(&model, &ds);
        assert_eq!(report.by_setting.len(), 16);
    }

    #[test]
    fn worst_returns_sorted_outliers() {
        let (model, ds) = fitted();
        let report = DiagnosticReport::new(&model, &ds);
        let worst = report.worst(10);
        assert_eq!(worst.len(), 10);
        for w in worst.windows(2) {
            assert!(w[0].relative().abs() >= w[1].relative().abs());
        }
    }

    #[test]
    fn histogram_accounts_for_every_sample() {
        let (model, ds) = fitted();
        let report = DiagnosticReport::new(&model, &ds);
        let hist = report.residual_histogram(10, 30);
        let total: usize =
            hist.lines().map(|l| l.rsplit_once(' ').unwrap().1.parse::<usize>().unwrap()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn mean_abs_error_matches_report() {
        let (model, ds) = fitted();
        let report = DiagnosticReport::new(&model, &ds);
        let direct = mean_abs_error(&model, ds.samples.iter());
        let from_report = report.residuals.iter().map(|r| r.relative().abs()).sum::<f64>()
            / report.residuals.len() as f64;
        assert!((direct - from_report).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let (model, _) = fitted();
        let _ = DiagnosticReport::new(&model, &Dataset::new());
    }
}
