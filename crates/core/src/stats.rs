//! Relative-error statistics, as the paper reports them (mean, standard
//! deviation, minimum, maximum — all in percent).

/// Summary statistics of a set of relative errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Number of errors summarized.
    pub count: usize,
    /// Mean relative error, percent.
    pub mean_pct: f64,
    /// Sample standard deviation, percent.
    pub std_pct: f64,
    /// Minimum, percent.
    pub min_pct: f64,
    /// Maximum, percent.
    pub max_pct: f64,
}

impl ErrorStats {
    /// Summarizes a slice of *relative* errors (fractions, not percent).
    ///
    /// Returns an all-zero summary for an empty slice.
    pub fn from_relative_errors(errors: &[f64]) -> Self {
        if errors.is_empty() {
            return ErrorStats {
                count: 0,
                mean_pct: 0.0,
                std_pct: 0.0,
                min_pct: 0.0,
                max_pct: 0.0,
            };
        }
        let pct: Vec<f64> = errors.iter().map(|e| e.abs() * 100.0).collect();
        let n = pct.len() as f64;
        let mean = pct.iter().sum::<f64>() / n;
        let std = if pct.len() > 1 {
            (pct.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        let min = pct.iter().copied().fold(f64::INFINITY, f64::min);
        let max = pct.iter().copied().fold(0.0f64, f64::max);
        ErrorStats { count: pct.len(), mean_pct: mean, std_pct: std, min_pct: min, max_pct: max }
    }

    /// Formats like the paper's prose: "mean 2.87% (σ 2.47), range
    /// 0.00–11.94%".
    pub fn summary(&self) -> String {
        format!(
            "mean {:.2}% (σ {:.2}), range {:.2}–{:.2}% over {} cases",
            self.mean_pct, self.std_pct, self.min_pct, self.max_pct, self.count
        )
    }
}

/// Relative error of a prediction against a measurement (fraction).
pub fn relative_error(predicted: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - measured).abs() / measured.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let s = ErrorStats::from_relative_errors(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_pct, 0.0);
    }

    #[test]
    fn known_values() {
        let s = ErrorStats::from_relative_errors(&[0.01, 0.03]);
        assert_eq!(s.count, 2);
        assert!((s.mean_pct - 2.0).abs() < 1e-12);
        assert!((s.min_pct - 1.0).abs() < 1e-12);
        assert!((s.max_pct - 3.0).abs() < 1e-12);
        // Sample std of {1, 3} = sqrt(2).
        assert!((s.std_pct - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn negative_errors_take_absolute_value() {
        let s = ErrorStats::from_relative_errors(&[-0.02, 0.02]);
        assert!((s.mean_pct - 2.0).abs() < 1e-12);
        assert_eq!(s.std_pct, 0.0);
    }

    #[test]
    fn single_error_has_zero_std() {
        let s = ErrorStats::from_relative_errors(&[0.05]);
        assert_eq!(s.std_pct, 0.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(11.0, 10.0), 0.1 - f64::EPSILON * 0.0);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn summary_mentions_all_fields() {
        let s = ErrorStats::from_relative_errors(&[0.01, 0.02]);
        let txt = s.summary();
        assert!(txt.contains("mean") && txt.contains("range") && txt.contains("2 cases"));
    }
}
