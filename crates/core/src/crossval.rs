//! Cross-validation of the fitted model (the paper's Section II-D).
//!
//! Two protocols are reproduced:
//!
//! * **2-fold holdout**: fit on the Table I "T" settings, predict every
//!   sample at the held-out "V" settings.  The paper reports a mean error
//!   of 2.87% (σ 2.47, max 11.94%).
//! * **Leave-one-setting-out** (the paper's "16-fold cross validation"):
//!   for each of the 16 settings, fit on the other 15 and predict the
//!   held-out setting's samples.  The paper reports mean 6.56%
//!   (σ 3.80, range 1.60–15.22%).

use crate::fit::{predict, try_fit_model_with, FitDiagnostics, FitOptions};
use crate::model::EnergyModel;
use crate::stats::{relative_error, ErrorStats};
use compat::error::{PipelineError, PipelineResult};
use dvfs_microbench::Dataset;

/// Result of a validation protocol.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Error summary across all held-out predictions.
    pub stats: ErrorStats,
    /// Per-sample relative errors (fractions), in dataset order of the
    /// held-out samples.
    pub errors: Vec<f64>,
    /// The model fitted on the full training split (holdout) or on the
    /// full dataset (k-fold; refit per fold internally).
    pub model: EnergyModel,
    /// Degradation diagnostics of the reference-model fit.
    pub fit_diagnostics: FitDiagnostics,
}

/// 2-fold holdout validation: train on the "T" split, validate on "V".
pub fn holdout_validation(dataset: &Dataset) -> ValidationReport {
    try_holdout_validation(dataset, &FitOptions::default()).expect("holdout fit")
}

/// Fallible 2-fold holdout validation under explicit fit options.
pub fn try_holdout_validation(
    dataset: &Dataset,
    options: &FitOptions,
) -> PipelineResult<ValidationReport> {
    let report = try_fit_model_with(dataset.training(), options)?;
    let errors: Vec<f64> = dataset
        .validation()
        .map(|s| relative_error(predict(&report.model, s), s.energy_j))
        .collect();
    Ok(ValidationReport {
        stats: ErrorStats::from_relative_errors(&errors),
        errors,
        model: report.model,
        fit_diagnostics: report.diagnostics,
    })
}

/// Leave-one-setting-out cross-validation over every distinct setting in
/// the dataset (16 folds for the Table I dataset).
pub fn leave_one_setting_out(dataset: &Dataset) -> ValidationReport {
    let folds = dataset.folds_by_setting();
    assert!(folds.len() >= 2, "need at least two settings to cross-validate");
    try_leave_one_setting_out(dataset, &FitOptions::default()).expect("k-fold fit")
}

/// Fallible leave-one-setting-out cross-validation under explicit fit
/// options.  Fails with [`PipelineError::InsufficientData`] when fewer
/// than two distinct settings are present.
pub fn try_leave_one_setting_out(
    dataset: &Dataset,
    options: &FitOptions,
) -> PipelineResult<ValidationReport> {
    let folds = dataset.folds_by_setting();
    if folds.len() < 2 {
        return Err(PipelineError::InsufficientData {
            needed: 2,
            got: folds.len(),
            context: "distinct settings for leave-one-setting-out".to_string(),
        });
    }
    let mut errors = Vec::new();
    for fold in &folds {
        let held: std::collections::HashSet<usize> = fold.iter().copied().collect();
        let train: Vec<&dvfs_microbench::Sample> = dataset
            .samples
            .iter()
            .enumerate()
            .filter(|(i, _)| !held.contains(i))
            .map(|(_, s)| s)
            .collect();
        let report = try_fit_model_with(train, options)?;
        for &i in fold {
            let s = &dataset.samples[i];
            errors.push(relative_error(predict(&report.model, s), s.energy_j));
        }
    }
    // Also fit on everything for the returned reference model.
    let full = try_fit_model_with(dataset.samples.iter(), options)?;
    Ok(ValidationReport {
        stats: ErrorStats::from_relative_errors(&errors),
        errors,
        model: full.model,
        fit_diagnostics: full.diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_microbench::{run_sweep, SweepConfig};

    fn dataset() -> Dataset {
        run_sweep(&SweepConfig { seed: 99, faults: None, ..SweepConfig::default() })
    }

    #[test]
    fn holdout_errors_in_paper_band() {
        let ds = dataset();
        let v = holdout_validation(&ds);
        // Paper: mean 2.87% (σ 2.47), max 11.94%.  The simulator's noise
        // processes were chosen to land in the same band; accept a
        // generous envelope around it.
        assert!(v.stats.count == ds.validation().count());
        assert!(v.stats.mean_pct < 8.0, "holdout mean {:.2}%", v.stats.mean_pct);
        assert!(v.stats.max_pct < 25.0, "holdout max {:.2}%", v.stats.max_pct);
    }

    #[test]
    fn kfold_errors_exceed_holdout_but_stay_bounded() {
        let ds = dataset();
        let hold = holdout_validation(&ds);
        let kfold = leave_one_setting_out(&ds);
        assert_eq!(kfold.errors.len(), ds.len());
        assert!(kfold.stats.mean_pct < 12.0, "k-fold mean {:.2}%", kfold.stats.mean_pct);
        // k-fold includes extreme settings (72/68 MHz) in its held-out
        // folds, so it is typically the harder protocol — as in the paper
        // (6.56% vs 2.87%).  Allow equality-ish outcomes but not absurd
        // inversions.
        assert!(
            kfold.stats.mean_pct > hold.stats.mean_pct * 0.3,
            "k-fold {:.2}% vs holdout {:.2}%",
            kfold.stats.mean_pct,
            hold.stats.mean_pct
        );
    }

    #[test]
    fn validation_on_ideal_pipeline_is_nearly_exact() {
        use dvfs_microbench::{dataset::table1_settings, MicrobenchKind, Sample};
        use powermon_sim::PowerMon;
        use tk1_sim::Device;
        let mut ds = Dataset::new();
        let mut dev = Device::ideal(5);
        let mut pm = PowerMon::ideal(6);
        for (setting, ty) in table1_settings() {
            dev.set_operating_point(setting);
            for kind in [MicrobenchKind::SinglePrecision, MicrobenchKind::Integer] {
                for mb in kind.instances() {
                    let m = pm.measure(&mut dev, mb.kernel());
                    ds.push(Sample {
                        kind: Some(kind.name().into()),
                        intensity: Some(mb.intensity),
                        ops: mb.kernel().ops,
                        setting,
                        setting_type: ty,
                        time_s: m.execution.duration_s,
                        energy_j: m.measured_energy_j,
                    });
                }
            }
        }
        let v = holdout_validation(&ds);
        assert!(v.stats.mean_pct < 1.0, "ideal pipeline mean {:.3}%", v.stats.mean_pct);
    }

    #[test]
    #[should_panic(expected = "at least two settings")]
    fn kfold_requires_multiple_settings() {
        let mut cfg = SweepConfig::default();
        cfg.faults = None;
        cfg.settings.truncate(1);
        let ds = run_sweep(&cfg);
        let _ = leave_one_setting_out(&ds);
    }
}
