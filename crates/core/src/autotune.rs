//! Autotuning for energy: the fitted model vs. the race-to-halt "time
//! oracle" (the paper's Section II-E, Table II).
//!
//! For every benchmark instance the tuner measures execution time (and,
//! for scoring only, energy) at every one of the 105 DVFS settings.  Then:
//!
//! * the **model** strategy picks the setting minimizing the *predicted*
//!   energy `Ê(s) = dynamic(ops, s) + π0(s)·T(s)` using the measured time
//!   `T(s)`;
//! * the **time-oracle** strategy picks the setting with minimal measured
//!   time — the race-to-halt doctrine;
//! * the ground truth is the setting with minimal *measured* energy.
//!
//! A strategy "mispredicts" a case when its pick differs from the
//! measured optimum; "energy lost" is how much more energy the picked
//! setting dissipated than the measured minimum, as in Table II.

use crate::model::EnergyModel;
use dvfs_microbench::{MicrobenchKind, Microbenchmark};
use powermon_sim::PowerMon;
use tk1_sim::{Device, Setting};

/// Per-strategy outcome over one benchmark family.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// Number of intensity points where the pick was not the measured
    /// optimum.
    pub mispredictions: usize,
    /// Relative extra energy of wrong picks (fractions, one entry per
    /// misprediction).
    pub losses: Vec<f64>,
}

impl StrategyResult {
    /// Mean extra energy over mispredicted cases, percent (0 if none).
    pub fn mean_lost_pct(&self) -> f64 {
        if self.losses.is_empty() {
            return 0.0;
        }
        self.losses.iter().sum::<f64>() / self.losses.len() as f64 * 100.0
    }

    /// Minimum extra energy over mispredicted cases, percent (0 if none).
    pub fn min_lost_pct(&self) -> f64 {
        if self.losses.is_empty() {
            return 0.0;
        }
        self.losses.iter().copied().fold(f64::INFINITY, f64::min) * 100.0
    }

    /// Maximum extra energy over mispredicted cases, percent.
    pub fn max_lost_pct(&self) -> f64 {
        self.losses.iter().copied().fold(0.0f64, f64::max) * 100.0
    }
}

/// Table II row: one benchmark family, both strategies.
#[derive(Debug, Clone)]
pub struct AutotuneOutcome {
    /// The benchmark family.
    pub kind: MicrobenchKind,
    /// Number of intensity points evaluated ("out of N").
    pub cases: usize,
    /// The model strategy's result.
    pub model: StrategyResult,
    /// The time-oracle strategy's result.
    pub oracle: StrategyResult,
}

/// One case's full measurement matrix (kept for diagnostics).
#[derive(Debug, Clone)]
pub struct CaseMeasurements {
    /// The candidate settings.
    pub settings: Vec<Setting>,
    /// Measured time per setting, s.
    pub time_s: Vec<f64>,
    /// Measured energy per setting, J.
    pub energy_j: Vec<f64>,
    /// Model-predicted energy per setting, J.
    pub predicted_j: Vec<f64>,
}

impl CaseMeasurements {
    fn argmin(values: &[f64]) -> usize {
        // `total_cmp` keeps the comparison total even if a degraded fit
        // ever produces a NaN prediction (NaN sorts last, so it can
        // never be selected over a finite minimum).
        values.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty").0
    }

    /// Index of the measured-energy optimum.
    pub fn best_measured(&self) -> usize {
        Self::argmin(&self.energy_j)
    }

    /// Index picked by the model strategy.
    pub fn model_pick(&self) -> usize {
        Self::argmin(&self.predicted_j)
    }

    /// Index picked by the time oracle.
    ///
    /// Race-to-halt doctrine: run as fast as possible.  Measured times at
    /// different settings can tie to within run-to-run jitter (e.g. a
    /// compute-bound kernel is equally fast at every memory frequency
    /// that keeps DRAM off the critical path); among settings within the
    /// jitter band of the minimum, the oracle takes the highest clocks —
    /// which is what "race" means operationally.
    pub fn oracle_pick(&self) -> usize {
        let t_min = self.time_s.iter().copied().fold(f64::INFINITY, f64::min);
        let band = t_min * (1.0 + Self::TIE_TOLERANCE);
        self.settings
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.time_s[i] <= band)
            .max_by_key(|&(_, s)| (s.core_idx, s.mem_idx))
            .expect("non-empty")
            .0
    }

    /// Relative band within which two measured times are considered tied.
    const TIE_TOLERANCE: f64 = 0.01;
}

/// Repetitions per (instance, setting) measurement; the paper's protocol
/// likewise averages repeated runs to suppress run-to-run noise before
/// comparing near-tied settings.
pub const TRIALS: usize = 3;

/// Measures one benchmark instance across `settings` (averaging
/// [`TRIALS`] runs each) and scores it under `model`.
pub fn measure_case(
    model: &EnergyModel,
    mb: &Microbenchmark,
    settings: &[Setting],
    device: &mut Device,
    meter: &mut PowerMon,
) -> CaseMeasurements {
    let mut time_s = Vec::with_capacity(settings.len());
    let mut energy_j = Vec::with_capacity(settings.len());
    let mut predicted_j = Vec::with_capacity(settings.len());
    for &s in settings {
        device.set_operating_point(s);
        let mut t_sum = 0.0;
        let mut e_sum = 0.0;
        for _ in 0..TRIALS {
            let m = meter.measure(device, mb.kernel());
            t_sum += m.execution.duration_s;
            e_sum += m.measured_energy_j;
        }
        let t = t_sum / TRIALS as f64;
        time_s.push(t);
        energy_j.push(e_sum / TRIALS as f64);
        predicted_j.push(model.predict_energy_j(&mb.kernel().ops, s, t));
    }
    CaseMeasurements { settings: settings.to_vec(), time_s, energy_j, predicted_j }
}

/// Runs the Table II experiment for the given families over all 105
/// settings.
pub fn autotune_microbenchmarks(
    model: &EnergyModel,
    kinds: &[MicrobenchKind],
    seed: u64,
) -> Vec<AutotuneOutcome> {
    let settings: Vec<Setting> = Setting::all().collect();
    kinds.iter().map(|&kind| autotune_family(model, kind, &settings, seed)).collect()
}

fn autotune_family(
    model: &EnergyModel,
    kind: MicrobenchKind,
    settings: &[Setting],
    seed: u64,
) -> AutotuneOutcome {
    let mut device = Device::new(seed ^ (kind as u64).wrapping_mul(0x1234_5678_9ABC));
    let mut meter = PowerMon::new(seed.rotate_left(kind as u32 + 1));
    let mut model_result = StrategyResult { mispredictions: 0, losses: Vec::new() };
    let mut oracle_result = StrategyResult { mispredictions: 0, losses: Vec::new() };
    let instances = kind.instances();
    for mb in &instances {
        let case = measure_case(model, mb, settings, &mut device, &mut meter);
        let best = case.best_measured();
        let e_best = case.energy_j[best];
        for (pick, result) in
            [(case.model_pick(), &mut model_result), (case.oracle_pick(), &mut oracle_result)]
        {
            if pick != best {
                result.mispredictions += 1;
                result.losses.push(case.energy_j[pick] / e_best - 1.0);
            }
        }
    }
    AutotuneOutcome { kind, cases: instances.len(), model: model_result, oracle: oracle_result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_model;
    use dvfs_microbench::{run_sweep, SweepConfig};

    fn fitted_model() -> EnergyModel {
        // Pinned fault-free: these paper-band assertions must stay
        // deterministic even when the suite runs under FMM_ENERGY_FAULTS.
        let ds = run_sweep(&SweepConfig { faults: None, ..SweepConfig::default() });
        fit_model(ds.training()).model
    }

    #[test]
    fn strategy_result_stats() {
        let r = StrategyResult { mispredictions: 2, losses: vec![0.10, 0.30] };
        assert!((r.mean_lost_pct() - 20.0).abs() < 1e-9);
        assert!((r.min_lost_pct() - 10.0).abs() < 1e-9);
        assert!((r.max_lost_pct() - 30.0).abs() < 1e-9);
        let empty = StrategyResult { mispredictions: 0, losses: vec![] };
        assert_eq!(empty.mean_lost_pct(), 0.0);
        assert_eq!(empty.max_lost_pct(), 0.0);
        // Regression: a perfect strategy (no mispredictions) used to
        // report `inf` here because the min-fold seeded with INFINITY.
        assert_eq!(empty.min_lost_pct(), 0.0);
    }

    #[test]
    fn equal_predictions_tie_break_to_lowest_setting_index() {
        // When two settings predict exactly equal energy the pick must be
        // deterministic: the lowest index in candidate order.  Pinned
        // across thread counts because `Setting::all()` order and
        // `min_by` ("first wins" on ties) are scheduling-independent —
        // the assertion would catch any future parallel argmin that
        // breaks first-wins.
        let c = CaseMeasurements {
            settings: vec![Setting::new(0, 0), Setting::new(1, 0), Setting::new(2, 0)],
            time_s: vec![2.0, 2.0, 3.0],
            energy_j: vec![4.0, 4.0, 5.0],
            predicted_j: vec![6.0, 6.0, 7.0],
        };
        for threads in [1usize, 2, 4, 8] {
            compat::par::set_thread_count(Some(threads));
            assert_eq!(c.model_pick(), 0, "threads={threads}");
            assert_eq!(c.best_measured(), 0, "threads={threads}");
        }
        compat::par::set_thread_count(None);
    }

    #[test]
    fn case_picks_are_argmins() {
        let c = CaseMeasurements {
            settings: vec![Setting::new(0, 0), Setting::new(1, 0), Setting::new(2, 0)],
            time_s: vec![3.0, 1.0, 2.0],
            energy_j: vec![5.0, 9.0, 4.0],
            predicted_j: vec![6.0, 8.0, 5.0],
        };
        assert_eq!(c.oracle_pick(), 1);
        assert_eq!(c.best_measured(), 2);
        assert_eq!(c.model_pick(), 2);
    }

    #[test]
    fn model_beats_oracle_on_single_precision() {
        // The paper's headline Table II result: for the SP family the
        // oracle mispredicts most cases and loses double-digit energy on
        // average; the model does much better.
        let model = fitted_model();
        let outcomes = autotune_microbenchmarks(&model, &[MicrobenchKind::SinglePrecision], 77);
        let sp = &outcomes[0];
        assert_eq!(sp.cases, 25);
        assert!(
            sp.oracle.mispredictions > sp.cases / 2,
            "oracle wrong on most SP cases: {}",
            sp.oracle.mispredictions
        );
        assert!(
            sp.model.mispredictions < sp.oracle.mispredictions,
            "model {} vs oracle {}",
            sp.model.mispredictions,
            sp.oracle.mispredictions
        );
        // Oracle's mean loss is substantial (paper: 18.52%).
        assert!(sp.oracle.mean_lost_pct() > 5.0, "oracle loses {:.1}%", sp.oracle.mean_lost_pct());
    }

    #[test]
    fn model_energy_loss_is_small_everywhere() {
        // Even where the model mispredicts, the paper's Table II shows it
        // loses little energy (≤ ~7%); mirror that shape.
        let model = fitted_model();
        let outcomes = autotune_microbenchmarks(
            &model,
            &[MicrobenchKind::SharedMemory, MicrobenchKind::L2],
            78,
        );
        for o in &outcomes {
            assert!(
                o.model.max_lost_pct() < 15.0,
                "{}: model max loss {:.1}%",
                o.kind.name(),
                o.model.max_lost_pct()
            );
        }
    }
}
