//! The Table IV experiment matrix: DVFS settings S1–S8 and FMM inputs
//! F1–F8 used for the 64-case FMM validation (Figure 5).

use tk1_sim::Setting;

/// One system setting row of Table IV.
#[derive(Debug, Clone, Copy)]
pub struct SystemSetting {
    /// Identifier ("S1".."S8").
    pub id: &'static str,
    /// Core frequency, MHz.
    pub core_mhz: f64,
    /// Memory frequency, MHz.
    pub mem_mhz: f64,
}

/// One FMM input row of Table IV.
#[derive(Debug, Clone, Copy)]
pub struct FmmInput {
    /// Identifier ("F1".."F8").
    pub id: &'static str,
    /// Number of points `N`.
    pub n: usize,
    /// Maximum points per box `Q`.
    pub q: usize,
}

/// Table IV's eight DVFS settings.
pub const SYSTEM_SETTINGS: [SystemSetting; 8] = [
    SystemSetting { id: "S1", core_mhz: 852.0, mem_mhz: 924.0 },
    SystemSetting { id: "S2", core_mhz: 756.0, mem_mhz: 924.0 },
    SystemSetting { id: "S3", core_mhz: 180.0, mem_mhz: 924.0 },
    SystemSetting { id: "S4", core_mhz: 852.0, mem_mhz: 792.0 },
    SystemSetting { id: "S5", core_mhz: 612.0, mem_mhz: 528.0 },
    SystemSetting { id: "S6", core_mhz: 540.0, mem_mhz: 528.0 },
    SystemSetting { id: "S7", core_mhz: 612.0, mem_mhz: 396.0 },
    SystemSetting { id: "S8", core_mhz: 852.0, mem_mhz: 204.0 },
];

/// Table IV's eight FMM inputs.
pub const FMM_INPUTS: [FmmInput; 8] = [
    FmmInput { id: "F1", n: 262_144, q: 128 },
    FmmInput { id: "F2", n: 131_072, q: 64 },
    FmmInput { id: "F3", n: 131_072, q: 256 },
    FmmInput { id: "F4", n: 131_072, q: 512 },
    FmmInput { id: "F5", n: 65_536, q: 1024 },
    FmmInput { id: "F6", n: 65_536, q: 512 },
    FmmInput { id: "F7", n: 65_536, q: 128 },
    FmmInput { id: "F8", n: 65_536, q: 64 },
];

impl SystemSetting {
    /// Resolves to a simulator [`Setting`].
    pub fn setting(&self) -> Setting {
        // Table IV rows are written against the fixed DVFS tables of the
        // same workspace; a miss is a programming error, not data.
        Setting::from_frequencies(self.core_mhz, self.mem_mhz)
            .expect("Table IV setting not in DVFS tables")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_system_settings_resolve() {
        for s in SYSTEM_SETTINGS {
            let setting = s.setting();
            let op = setting.operating_point();
            assert_eq!(op.core.freq_mhz, s.core_mhz);
            assert_eq!(op.mem.freq_mhz, s.mem_mhz);
        }
    }

    #[test]
    fn s1_is_max_performance() {
        assert_eq!(SYSTEM_SETTINGS[0].setting(), Setting::max_performance());
    }

    #[test]
    fn fmm_inputs_match_table4() {
        assert_eq!(FMM_INPUTS[0].n, 262_144);
        assert_eq!(FMM_INPUTS[0].q, 128);
        assert_eq!(FMM_INPUTS[4].q, 1024);
        assert_eq!(FMM_INPUTS.len() * SYSTEM_SETTINGS.len(), 64, "64 validation cases");
    }

    #[test]
    fn ids_are_sequential() {
        for (i, s) in SYSTEM_SETTINGS.iter().enumerate() {
            assert_eq!(s.id, format!("S{}", i + 1));
        }
        for (i, f) in FMM_INPUTS.iter().enumerate() {
            assert_eq!(f.id, format!("F{}", i + 1));
        }
    }
}
