//! Energy-breakdown reports (the paper's Figures 6 and 7).
//!
//! Figure 6 splits an application's energy across instruction types and
//! memory levels; Figure 7 coarsens that into three buckets —
//! computation, data movement, and constant power — and reports shares of
//! the total.  For the FMM, constant power dominates at 75–95%; for the
//! saturating microbenchmarks it is only ~30%, which is the paper's
//! explanation for why race-to-halt happens to be optimal for the FMM.

use crate::model::{EnergyModel, ModelBreakdown};
use tk1_sim::{OpClass, OpVector, Setting, ALL_CLASSES};

/// One labelled share of a breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyShare {
    /// Component label.
    pub label: String,
    /// Energy, J.
    pub energy_j: f64,
    /// Share of the total, in `[0, 1]`.
    pub share: f64,
}

/// A full per-class + per-bucket energy report for one execution.
#[derive(Debug, Clone)]
pub struct BreakdownReport {
    /// The underlying model breakdown.
    pub breakdown: ModelBreakdown,
    /// Per-op-class shares (7 entries, classes in canonical order).
    pub per_class: Vec<EnergyShare>,
    /// Figure 7's three buckets: computation, data, constant power.
    pub buckets: [EnergyShare; 3],
}

impl BreakdownReport {
    /// Builds the report for `(ops, setting, time)` under `model`.
    pub fn new(model: &EnergyModel, ops: &OpVector, setting: Setting, time_s: f64) -> Self {
        let breakdown = model.predict_breakdown(ops, setting, time_s);
        let total = breakdown.total_j().max(f64::MIN_POSITIVE);
        let per_class = ALL_CLASSES
            .iter()
            .map(|&c| EnergyShare {
                label: c.name().to_string(),
                energy_j: breakdown.class_j(c),
                share: breakdown.class_j(c) / total,
            })
            .collect();
        let buckets = [
            EnergyShare {
                label: "Computation".into(),
                energy_j: breakdown.computation_j(),
                share: breakdown.computation_j() / total,
            },
            EnergyShare {
                label: "Data".into(),
                energy_j: breakdown.data_j(),
                share: breakdown.data_j() / total,
            },
            EnergyShare {
                label: "Constant power".into(),
                energy_j: breakdown.constant_j,
                share: breakdown.constant_j / total,
            },
        ];
        BreakdownReport { breakdown, per_class, buckets }
    }

    /// Share of *compute* energy attributable to integer instructions
    /// (the paper observes ~23% for the FMM, versus ~60% of instruction
    /// count).
    pub fn integer_share_of_compute(&self) -> f64 {
        let compute = self.breakdown.computation_j();
        if compute > 0.0 {
            self.breakdown.class_j(OpClass::Int) / compute
        } else {
            0.0
        }
    }

    /// Share of *data* energy attributable to DRAM (the paper observes up
    /// to ~50% despite DRAM being ~13% of accesses).
    pub fn dram_share_of_data(&self) -> f64 {
        let data = self.breakdown.data_j();
        if data > 0.0 {
            self.breakdown.class_j(OpClass::Dram) / data
        } else {
            0.0
        }
    }

    /// Constant-power share of the total (Figure 7's headline number).
    pub fn constant_share(&self) -> f64 {
        self.breakdown.constant_share()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        let t = tk1_sim::TruthConstants::ideal();
        EnergyModel {
            c0_pj_per_v2: t.c0_pj_per_v2,
            c1_proc_w_per_v: t.c1_proc_w_per_v,
            c1_mem_w_per_v: t.c1_mem_w_per_v,
            p_misc_w: t.p_misc_w,
        }
    }

    fn ops() -> OpVector {
        // Shaped like the FMM: double-precision flops (Table III counts
        // flops_dp_*), an integer-heavy instruction mix, mostly on-chip
        // data with a small DRAM tail.
        OpVector::from_pairs(&[
            (OpClass::FlopDp, 1e9),
            (OpClass::Int, 2e9),
            (OpClass::L1, 1e8),
            (OpClass::L2, 5e7),
            (OpClass::Dram, 2e7),
        ])
    }

    #[test]
    fn shares_sum_to_one() {
        let r = BreakdownReport::new(&model(), &ops(), Setting::max_performance(), 0.5);
        let class_sum: f64 = r.per_class.iter().map(|s| s.share).sum();
        let bucket_sum: f64 = r.buckets.iter().map(|s| s.share).sum();
        // Per-class shares exclude constant power.
        assert!((class_sum + r.constant_share() - 1.0).abs() < 1e-12);
        assert!((bucket_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_labels_match_figure7() {
        let r = BreakdownReport::new(&model(), &ops(), Setting::max_performance(), 0.5);
        assert_eq!(r.buckets[0].label, "Computation");
        assert_eq!(r.buckets[1].label, "Data");
        assert_eq!(r.buckets[2].label, "Constant power");
    }

    #[test]
    fn longer_time_raises_constant_share() {
        let m = model();
        let short = BreakdownReport::new(&m, &ops(), Setting::max_performance(), 0.1);
        let long = BreakdownReport::new(&m, &ops(), Setting::max_performance(), 10.0);
        assert!(long.constant_share() > short.constant_share());
        assert!(long.constant_share() > 0.9);
    }

    #[test]
    fn integer_energy_share_below_instruction_share() {
        // 2e9 of 3e9 instructions are integer (67%), but integer ops are
        // cheap, so their energy share of compute must be far lower —
        // the paper's Section IV-C(a) observation.
        let r = BreakdownReport::new(&model(), &ops(), Setting::max_performance(), 0.5);
        let inst_share = 2e9 / 3e9;
        assert!(r.integer_share_of_compute() < inst_share);
        assert!(r.integer_share_of_compute() > 0.2);
    }

    #[test]
    fn dram_energy_share_exceeds_access_share() {
        // DRAM is 2e7 of 1.7e8 accesses (~12%) but costs 377 pJ/word vs
        // ~35–90 pJ for on-chip levels: its energy share must be several
        // times its access share — Section IV-C(b).
        let r = BreakdownReport::new(&model(), &ops(), Setting::max_performance(), 0.5);
        let access_share = 2e7 / 1.7e8;
        assert!(r.dram_share_of_data() > 2.0 * access_share);
    }

    #[test]
    fn zero_ops_is_all_constant() {
        let r = BreakdownReport::new(&model(), &OpVector::zero(), Setting::max_performance(), 1.0);
        assert!((r.constant_share() - 1.0).abs() < 1e-12);
        assert_eq!(r.integer_share_of_compute(), 0.0);
        assert_eq!(r.dram_share_of_data(), 0.0);
    }
}
