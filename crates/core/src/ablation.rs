//! Model-structure ablation: what does DVFS-awareness buy?
//!
//! The paper's contribution over the original energy roofline
//! (IPDPS'13) is letting the per-op energies and constant power vary
//! with voltage and frequency.  This module quantifies that delta by
//! fitting three nested predictors on the same training data and
//! cross-validating them across DVFS settings:
//!
//! * **DvfsAware** — the paper's model (equation 9): `ε = ĉ0·V²`,
//!   `π0 = c1p·Vp + c1m·Vm + P_misc`.
//! * **Static** — the prior model: one fixed `ε` per op class and one
//!   fixed `π0`, independent of the setting.  Fits the training settings
//!   in aggregate, mispredicts any setting far from their "average".
//! * **MeanPower** — the degenerate baseline: `E = P̄·T` with a single
//!   fitted average power.  Knows nothing about operations at all.
//!
//! On a *single* setting the three are nearly indistinguishable; swept
//! across the DVFS range, the static model's error grows with the
//! voltage span and the mean-power baseline fails on any workload whose
//! mix differs from the training average — which is exactly the case
//! the paper's autotuner needs the model for.

use crate::fit::{design_row, fit_model};
use crate::stats::{relative_error, ErrorStats};
use dvfs_linalg::{nnls, Matrix, NnlsOptions};
use dvfs_microbench::{Dataset, Sample};

/// Which predictor structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelStructure {
    /// The paper's DVFS-aware model (equation 9).
    DvfsAware,
    /// Fixed per-op energies and constant power (IPDPS'13 roofline).
    Static,
    /// A single fitted average power: `E = P̄ · T`.
    MeanPower,
}

impl ModelStructure {
    /// All structures, strongest first.
    pub const ALL: [ModelStructure; 3] =
        [ModelStructure::DvfsAware, ModelStructure::Static, ModelStructure::MeanPower];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelStructure::DvfsAware => "DVFS-aware (eq. 9)",
            ModelStructure::Static => "static roofline",
            ModelStructure::MeanPower => "mean power x time",
        }
    }
}

/// A fitted predictor of any of the three structures.
#[derive(Debug, Clone)]
pub enum FittedPredictor {
    /// The full model.
    DvfsAware(crate::model::EnergyModel),
    /// Fixed coefficients: 7 per-op energies (J) + constant power (W).
    Static { epsilon_j: [f64; tk1_sim::NUM_OP_CLASSES], pi0_w: f64 },
    /// One average power (W).
    MeanPower { p_bar_w: f64 },
}

impl FittedPredictor {
    /// Fits the given structure on training samples.
    pub fn fit<'a>(
        structure: ModelStructure,
        samples: impl IntoIterator<Item = &'a Sample>,
    ) -> FittedPredictor {
        let samples: Vec<&Sample> = samples.into_iter().collect();
        match structure {
            ModelStructure::DvfsAware => {
                FittedPredictor::DvfsAware(fit_model(samples.iter().copied()).model)
            }
            ModelStructure::Static => {
                // Columns: 7 op counts + time.  No voltage scaling.
                let cols = tk1_sim::NUM_OP_CLASSES + 1;
                let mut data = Vec::with_capacity(samples.len() * cols);
                let mut b = Vec::with_capacity(samples.len());
                for s in &samples {
                    for (_, count) in s.ops.iter() {
                        data.push(count);
                    }
                    data.push(s.time_s);
                    b.push(s.energy_j);
                }
                let a = Matrix::from_vec(samples.len(), cols, data);
                // Column scaling as in the main fit.
                let mut scales = vec![1.0f64; cols];
                for (j, scale) in scales.iter_mut().enumerate() {
                    let mx = (0..a.rows()).map(|i| a[(i, j)].abs()).fold(0.0f64, f64::max);
                    *scale = if mx > 0.0 { mx } else { 1.0 };
                }
                let scaled = Matrix::from_fn(a.rows(), cols, |i, j| a[(i, j)] / scales[j]);
                let sol = nnls(&scaled, &b, &NnlsOptions::default()).expect("static NNLS");
                let mut epsilon_j = [0.0; tk1_sim::NUM_OP_CLASSES];
                for (k, e) in epsilon_j.iter_mut().enumerate() {
                    *e = sol.x[k] / scales[k];
                }
                FittedPredictor::Static { epsilon_j, pi0_w: sol.x[cols - 1] / scales[cols - 1] }
            }
            ModelStructure::MeanPower => {
                // Least-squares through the origin: P̄ = Σ E·T / Σ T².
                let num: f64 = samples.iter().map(|s| s.energy_j * s.time_s).sum();
                let den: f64 = samples.iter().map(|s| s.time_s * s.time_s).sum();
                FittedPredictor::MeanPower { p_bar_w: if den > 0.0 { num / den } else { 0.0 } }
            }
        }
    }

    /// Predicted energy of a sample.
    pub fn predict_j(&self, sample: &Sample) -> f64 {
        match self {
            FittedPredictor::DvfsAware(m) => {
                m.predict_energy_j(&sample.ops, sample.setting, sample.time_s)
            }
            FittedPredictor::Static { epsilon_j, pi0_w } => {
                let mut e = pi0_w * sample.time_s;
                for (class, count) in sample.ops.iter() {
                    e += count * epsilon_j[class.index()];
                }
                e
            }
            FittedPredictor::MeanPower { p_bar_w } => p_bar_w * sample.time_s,
        }
    }
}

/// One row of the ablation result.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The structure evaluated.
    pub structure: ModelStructure,
    /// Held-out (validation-split) error statistics.
    pub holdout: ErrorStats,
}

/// Fits all three structures on the training split and validates each on
/// the held-out settings — the design-choice ablation of DESIGN.md's A-series.
pub fn model_structure_ablation(dataset: &Dataset) -> Vec<AblationRow> {
    ModelStructure::ALL
        .iter()
        .map(|&structure| {
            let predictor = FittedPredictor::fit(structure, dataset.training());
            let errors: Vec<f64> = dataset
                .validation()
                .map(|s| relative_error(predictor.predict_j(s), s.energy_j))
                .collect();
            AblationRow { structure, holdout: ErrorStats::from_relative_errors(&errors) }
        })
        .collect()
}

// Re-exported for the Static fit's symmetry with the main design matrix.
#[allow(dead_code)]
fn _design_row_is_public(sample: &Sample) -> [f64; crate::fit::NUM_COLUMNS] {
    design_row(sample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_microbench::{run_sweep, SweepConfig};

    fn dataset() -> Dataset {
        run_sweep(&SweepConfig { seed: 0xAB1A, faults: None, ..SweepConfig::default() })
    }

    #[test]
    fn dvfs_aware_beats_static_beats_mean_power() {
        // The paper's raison d'être, measured: across DVFS settings the
        // nested structures order strictly by expressiveness.
        let ds = dataset();
        let rows = model_structure_ablation(&ds);
        assert_eq!(rows.len(), 3);
        let dvfs = rows[0].holdout.mean_pct;
        let stat = rows[1].holdout.mean_pct;
        let mean = rows[2].holdout.mean_pct;
        assert!(dvfs < stat, "DVFS-aware {dvfs:.2}% must beat static {stat:.2}% across settings");
        assert!(stat < mean, "op-aware static {stat:.2}% must beat mean-power {mean:.2}%");
        // And the gaps are material, not noise.
        assert!(stat > dvfs * 1.5, "static at least 1.5x worse: {stat:.2} vs {dvfs:.2}");
    }

    #[test]
    fn static_model_is_fine_at_a_single_setting() {
        // Restricted to one setting, the static model predicts well —
        // DVFS-awareness only matters across settings.
        let ds = dataset();
        let one_setting = ds.samples[0].setting;
        let at_setting: Vec<&Sample> =
            ds.samples.iter().filter(|s| s.setting == one_setting).collect();
        assert!(at_setting.len() > 50);
        // Interleave so every benchmark family appears in both halves
        // (a family absent from training leaves its ε unconstrained).
        let train: Vec<&Sample> = at_setting.iter().step_by(2).copied().collect();
        let test: Vec<&Sample> = at_setting.iter().skip(1).step_by(2).copied().collect();
        let predictor = FittedPredictor::fit(ModelStructure::Static, train);
        let errors: Vec<f64> =
            test.iter().map(|s| relative_error(predictor.predict_j(s), s.energy_j)).collect();
        let stats = ErrorStats::from_relative_errors(&errors);
        assert!(stats.mean_pct < 8.0, "single-setting static error {:.2}%", stats.mean_pct);
    }

    #[test]
    fn mean_power_predictor_is_a_single_number() {
        let ds = dataset();
        let p = FittedPredictor::fit(ModelStructure::MeanPower, ds.training());
        if let FittedPredictor::MeanPower { p_bar_w } = p {
            assert!(p_bar_w > 4.0 && p_bar_w < 14.0, "plausible board power: {p_bar_w}");
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn structure_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            ModelStructure::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 3);
    }
}
