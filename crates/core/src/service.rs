//! Request-shaped entry points for the serving layer.
//!
//! The rest of this crate is organized around *reproducing the paper* —
//! run a sweep, fit, cross-validate, print a table.  A tuning service
//! asks the same questions in a different shape: "fit me a model for
//! this device" and "given a fitted model, rank these settings for this
//! workload", each as one call with no I/O and no printing.  This
//! module is that shape, so `autoserve` (and any future server) never
//! has to reach into the measurement plumbing:
//!
//! * [`try_fit_from_sweep`] — sweep + robust NNLS fit in one fallible
//!   call; the measurement-to-model half, shared with `bench::pipeline`.
//! * [`predict_grid`] / [`best_index`] — the model-to-answer half:
//!   time/energy estimates for a workload across a setting grid and the
//!   argmin over it, all pure functions.
//! * [`service_grid`] — the default answer grid, an 8×7 subsample of
//!   the full DVFS table standing in for the paper's "8×8" autotuning
//!   grid (the simulated TK1 exposes 15×7 points, so 8 evenly spaced
//!   core frequencies × all 7 memory frequencies is the honest
//!   equivalent).

use crate::fit::{try_fit_model_with, FitDiagnostics, FitOptions};
use crate::model::EnergyModel;
use compat::error::PipelineResult;
use dvfs_microbench::{try_run_sweep, Dataset, SweepConfig, SweepStats};
use tk1_sim::{core_points, mem_points, KernelProfile, Setting, TimingModel};

/// A fitted model plus everything the measurement campaign reported on
/// the way there — the serving layer's unit of cached state.
#[derive(Debug, Clone)]
pub struct ModelFit {
    /// The fitted energy model.
    pub model: EnergyModel,
    /// The sweep dataset the model was trained on.
    pub dataset: Dataset,
    /// Retry/cooldown accounting from the measurement campaign.
    pub sweep_stats: SweepStats,
    /// Degradation diagnostics of the NNLS fit.
    pub diagnostics: FitDiagnostics,
}

/// Runs the configured sweep and fits the model on its training split.
///
/// When fault injection is active, the fit additionally enables robust
/// row-outlier rejection so corrupted measurements that slipped past
/// the sweep's sanity gates are down-weighted instead of biasing the
/// model constants.  This is the one sweep-to-model path in the
/// workspace; `bench::pipeline::try_fitted_model` delegates here.
pub fn try_fit_from_sweep(config: &SweepConfig) -> PipelineResult<ModelFit> {
    let run = try_run_sweep(config)?;
    let options =
        FitOptions { reject_row_outliers: config.faults.is_some(), ..FitOptions::default() };
    let report = try_fit_model_with(run.dataset.training(), &options)?;
    Ok(ModelFit {
        model: report.model,
        dataset: run.dataset,
        sweep_stats: run.stats,
        diagnostics: report.diagnostics,
    })
}

/// One grid point of a tuning answer: the model's time and energy
/// estimate for the requested workload at one DVFS setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPrediction {
    /// The DVFS setting.
    pub setting: Setting,
    /// Roofline-predicted execution time of the whole workload, s.
    pub time_s: f64,
    /// Model-predicted energy of the whole workload, J.
    pub energy_j: f64,
}

/// Predicts time and energy for `kernels` (run back to back, as the
/// FMM's phases are) at every setting of `grid`.
///
/// Pure: answers depend only on the model, the timing ground truth, and
/// the arguments — which is what lets the service cache fitted state
/// per device and batch many requests against one model.
pub fn predict_grid(
    model: &EnergyModel,
    timing: &TimingModel,
    kernels: &[KernelProfile],
    grid: &[Setting],
) -> Vec<GridPrediction> {
    grid.iter()
        .map(|&setting| {
            let mut time_s = 0.0;
            let mut energy_j = 0.0;
            for k in kernels {
                let t = timing.execution_time(k, setting).total_s;
                time_s += t;
                energy_j += model.predict_energy_j(&k.ops, setting, t);
            }
            GridPrediction { setting, time_s, energy_j }
        })
        .collect()
}

/// Index of the minimum-energy grid point.
///
/// `total_cmp` with first-wins ties keeps the argmin total and
/// deterministic even if a degraded fit yields NaN predictions (NaN
/// sorts last, so it can never be picked over a finite entry).
pub fn best_index(grid: &[GridPrediction]) -> Option<usize> {
    grid.iter().enumerate().min_by(|a, b| a.1.energy_j.total_cmp(&b.1.energy_j)).map(|(i, _)| i)
}

/// How many core frequencies the default service grid samples.
pub const SERVICE_GRID_CORES: usize = 8;

/// The default answer grid: 8 evenly spaced core frequencies × all 7
/// memory frequencies (56 points).
///
/// The paper autotunes over an "8×8" grid of its TK1's exposed
/// settings; the simulated board exposes 15 core × 7 memory points, so
/// this subsample is the closest honest equivalent — it always includes
/// both table corners (min/min and max/max).
pub fn service_grid() -> Vec<Setting> {
    let n_core = core_points().len();
    let n_mem = mem_points().len();
    let mut grid = Vec::with_capacity(SERVICE_GRID_CORES * n_mem);
    for i in 0..SERVICE_GRID_CORES {
        // Evenly spaced with rounding; i=0 → 0, i=7 → n_core-1.
        let core_idx = (i * (n_core - 1) + (SERVICE_GRID_CORES - 1) / 2) / (SERVICE_GRID_CORES - 1);
        for mem_idx in 0..n_mem {
            grid.push(Setting::new(core_idx, mem_idx));
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use tk1_sim::{Device, OpClass, OpVector};

    fn fit() -> ModelFit {
        let cfg = SweepConfig::service_preset(0x5E4E, None);
        try_fit_from_sweep(&cfg).expect("clean service fit")
    }

    #[test]
    fn service_fit_is_clean_and_deterministic() {
        let a = fit();
        let b = fit();
        assert!(!a.diagnostics.degraded(), "full-family preset must excite every column");
        assert_eq!(a.model, b.model, "same seed, same model, bitwise");
        assert_eq!(a.sweep_stats, SweepStats::default());
    }

    #[test]
    fn grid_has_56_points_and_spans_the_table_corners() {
        let grid = service_grid();
        assert_eq!(grid.len(), 56);
        let n_core = core_points().len();
        let n_mem = mem_points().len();
        assert!(grid.contains(&Setting::new(0, 0)));
        assert!(grid.contains(&Setting::new(n_core - 1, n_mem - 1)));
        // Strictly increasing core indices: 8 distinct frequencies.
        let mut cores: Vec<usize> = grid.iter().map(|s| s.core_idx).collect();
        cores.dedup();
        assert_eq!(cores.len(), SERVICE_GRID_CORES);
        assert!(cores.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn predictions_are_positive_and_best_index_is_stable() {
        let f = fit();
        let device = Device::new(1);
        let ops = OpVector::from_pairs(&[(OpClass::FlopSp, 1e9), (OpClass::Dram, 2e7)]);
        let kernels = [KernelProfile::new("svc-test", ops)];
        let grid = service_grid();
        let preds = predict_grid(&f.model, device.timing_model(), &kernels, &grid);
        assert_eq!(preds.len(), grid.len());
        for p in &preds {
            assert!(p.time_s > 0.0 && p.energy_j > 0.0, "{p:?}");
        }
        let best = best_index(&preds).expect("non-empty grid");
        assert!(best < preds.len());
        let again = predict_grid(&f.model, device.timing_model(), &kernels, &grid);
        assert_eq!(preds, again, "pure function of its arguments");
    }

    #[test]
    fn best_index_ignores_nan_rows() {
        let s = Setting::new(0, 0);
        let grid = [
            GridPrediction { setting: s, time_s: 1.0, energy_j: f64::NAN },
            GridPrediction { setting: s, time_s: 1.0, energy_j: 2.0 },
            GridPrediction { setting: s, time_s: 1.0, energy_j: 1.0 },
        ];
        assert_eq!(best_index(&grid), Some(2));
    }
}
