//! The (energy) roofline — the model this paper's DVFS-aware extension
//! builds on (Choi et al., IPDPS'13; Williams et al., CACM'09).
//!
//! For a given DVFS setting, the *time* roofline bounds attainable
//! performance by `min(peak_flops, intensity × peak_bandwidth)`, with the
//! knee at the machine balance `B_τ = peak_flops / peak_bandwidth`.  The
//! *energy* roofline is the analogous bound on attainable flops per
//! joule; its knee — the *energy balance* `B_ε` — sits where the energy
//! of flops equals the energy of the memory traffic *plus* the
//! constant-power-time product.  Comparing `B_τ` and `B_ε` per setting
//! answers the paper's framing question: does racing through the
//! computation or sipping it slowly cost less energy at a given
//! intensity?

use crate::model::EnergyModel;
use tk1_sim::{MachineSpec, OpClass, Setting};

/// Bytes per model word.
const WORD_BYTES: f64 = 4.0;

/// The time- and energy-roofline parameters of one DVFS setting.
#[derive(Debug, Clone)]
pub struct RooflinePoint {
    /// The setting.
    pub setting: Setting,
    /// Peak SP throughput, flop/s.
    pub peak_flops: f64,
    /// Peak DRAM bandwidth, B/s.
    pub peak_bandwidth: f64,
    /// Time balance `B_τ` (flops per byte).
    pub time_balance: f64,
    /// Energy per flop, J.
    pub flop_energy_j: f64,
    /// Energy per DRAM byte, J.
    pub byte_energy_j: f64,
    /// Constant power, W.
    pub constant_power_w: f64,
    /// Energy balance `B_ε` (flops per byte), including constant energy.
    pub energy_balance: f64,
}

/// The energy roofline of an [`EnergyModel`] over a machine.
#[derive(Debug, Clone)]
pub struct EnergyRoofline<'m> {
    model: &'m EnergyModel,
    spec: MachineSpec,
}

impl<'m> EnergyRoofline<'m> {
    /// Builds the roofline view for `model` on the default machine.
    pub fn new(model: &'m EnergyModel) -> Self {
        EnergyRoofline { model, spec: MachineSpec::default() }
    }

    /// Roofline parameters at one setting (single precision).
    pub fn at(&self, setting: Setting) -> RooflinePoint {
        let peak_flops = self.spec.peak_sp_ops(setting);
        let peak_bandwidth = self.spec.peak_dram_bandwidth(setting);
        let flop_energy_j = self.model.energy_per_op_j(OpClass::FlopSp, setting);
        let byte_energy_j = self.model.energy_per_op_j(OpClass::Dram, setting) / WORD_BYTES;
        let constant_power_w = self.model.constant_power_w(setting);
        let time_balance = peak_flops / peak_bandwidth;
        RooflinePoint {
            setting,
            peak_flops,
            peak_bandwidth,
            time_balance,
            flop_energy_j,
            byte_energy_j,
            constant_power_w,
            energy_balance: Self::energy_balance(
                flop_energy_j,
                byte_energy_j,
                constant_power_w,
                peak_flops,
                peak_bandwidth,
            ),
        }
    }

    /// The intensity at which flop energy equals byte energy when both
    /// are charged their share of constant power under roofline-optimal
    /// execution.
    ///
    /// At intensity `I` (flops/byte) with `W` flops, bytes `= W/I`; the
    /// roofline-optimal time is `max(W/F, W/(I·Bw))`.  The *effective*
    /// energy per flop is `ε_flop + π0/F` in the compute-bound regime and
    /// the effective energy per byte `ε_byte + π0/Bw` in the memory-bound
    /// one; `B_ε` is where total flop-side energy equals byte-side
    /// energy:
    ///
    /// ```text
    /// B_ε = (ε_byte + π0/Bw) / ε_flop        if B_ε >= B_τ (knee in the
    ///                                         compute-bound region)
    /// ```
    fn energy_balance(flop_j: f64, byte_j: f64, pi0: f64, peak_flops: f64, peak_bw: f64) -> f64 {
        // Memory-bound side carries the constant power (T = bytes/Bw).
        let eff_byte = byte_j + pi0 / peak_bw;
        let b_eps = eff_byte / flop_j;
        let b_tau = peak_flops / peak_bw;
        if b_eps >= b_tau {
            b_eps
        } else {
            // Knee lands in the compute-bound region: constant power rides
            // on the flop side instead.
            byte_j / (flop_j + pi0 / peak_flops)
        }
    }

    /// Attainable performance (flop/s) at `intensity` under the time
    /// roofline.
    pub fn attainable_flops(&self, setting: Setting, intensity: f64) -> f64 {
        let p = self.at(setting);
        p.peak_flops.min(intensity * p.peak_bandwidth)
    }

    /// Attainable energy efficiency (flop/J) at `intensity` under the
    /// energy roofline, constant power included.
    pub fn attainable_flops_per_joule(&self, setting: Setting, intensity: f64) -> f64 {
        let p = self.at(setting);
        // Per flop: its own energy, its share of byte energy, and the
        // constant energy over the roofline-optimal time.
        let bytes_per_flop = 1.0 / intensity;
        let time_per_flop = (1.0 / p.peak_flops).max(bytes_per_flop / p.peak_bandwidth);
        let joules_per_flop =
            p.flop_energy_j + bytes_per_flop * p.byte_energy_j + p.constant_power_w * time_per_flop;
        1.0 / joules_per_flop
    }

    /// The setting that maximizes energy efficiency at `intensity`.
    pub fn most_efficient_setting(&self, intensity: f64) -> Setting {
        Setting::all()
            .max_by(|&a, &b| {
                self.attainable_flops_per_joule(a, intensity)
                    .partial_cmp(&self.attainable_flops_per_joule(b, intensity))
                    .expect("finite")
            })
            .expect("non-empty settings")
    }

    /// Renders a text-mode roofline chart (log-log) for one setting —
    /// the readable stand-in for the paper's figures.
    pub fn render(&self, setting: Setting, width: usize) -> String {
        let p = self.at(setting);
        let mut out = String::new();
        out.push_str(&format!(
            "energy roofline at {} — peak {:.1} Gflop/s, {:.1} GB/s, π0 {:.2} W\n",
            setting.label(),
            p.peak_flops / 1e9,
            p.peak_bandwidth / 1e9,
            p.constant_power_w
        ));
        out.push_str(&format!(
            "time balance {:.2} flop/B, energy balance {:.2} flop/B\n",
            p.time_balance, p.energy_balance
        ));
        let max_eff = self.attainable_flops_per_joule(setting, 1024.0);
        for k in 0..=10 {
            let intensity = 0.25 * 2f64.powi(k);
            let eff = self.attainable_flops_per_joule(setting, intensity);
            let bar = ((eff / max_eff) * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>8.2} flop/B |{}{} {:.2} Gflop/J\n",
                intensity,
                "#".repeat(bar.min(width)),
                " ".repeat(width.saturating_sub(bar)),
                eff / 1e9
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        let t = tk1_sim::TruthConstants::ideal();
        EnergyModel {
            c0_pj_per_v2: t.c0_pj_per_v2,
            c1_proc_w_per_v: t.c1_proc_w_per_v,
            c1_mem_w_per_v: t.c1_mem_w_per_v,
            p_misc_w: t.p_misc_w,
        }
    }

    #[test]
    fn time_balance_matches_peak_ratio() {
        let m = model();
        let r = EnergyRoofline::new(&m);
        let p = r.at(Setting::max_performance());
        // 192 flop/cycle × 852 MHz over 16 B/cycle × 924 MHz ≈ 11.1.
        assert!((p.time_balance - (192.0 * 852e6) / (16.0 * 924e6)).abs() < 1e-6);
    }

    #[test]
    fn attainable_flops_has_roofline_shape() {
        let m = model();
        let r = EnergyRoofline::new(&m);
        let s = Setting::max_performance();
        let low = r.attainable_flops(s, 0.5);
        let knee = r.attainable_flops(s, r.at(s).time_balance);
        let high = r.attainable_flops(s, 1000.0);
        assert!(low < knee, "bandwidth-limited below the knee");
        assert!((knee - high).abs() / high < 1e-9, "flat roof above the knee");
        assert!((high - r.at(s).peak_flops).abs() < 1.0);
    }

    #[test]
    fn efficiency_increases_with_intensity() {
        let m = model();
        let r = EnergyRoofline::new(&m);
        let s = Setting::max_performance();
        let mut prev = 0.0;
        for k in 0..12 {
            let eff = r.attainable_flops_per_joule(s, 0.25 * 2f64.powi(k));
            assert!(eff > prev, "monotone in intensity");
            prev = eff;
        }
        // Asymptote: 1/(ε_flop + π0/peak_flops).
        let p = r.at(s);
        let asymptote = 1.0 / (p.flop_energy_j + p.constant_power_w / p.peak_flops);
        assert!(r.attainable_flops_per_joule(s, 1e6) < asymptote * 1.001);
        assert!(r.attainable_flops_per_joule(s, 1e6) > asymptote * 0.99);
    }

    #[test]
    fn energy_balance_exceeds_time_balance_on_this_platform() {
        // Constant power is large relative to ε_flop on the TK1, so the
        // energy knee sits to the right of the time knee: programs need
        // *more* intensity to be energy-efficient than to be fast — the
        // platform-level version of the paper's constant-power story.
        let m = model();
        let r = EnergyRoofline::new(&m);
        let p = r.at(Setting::max_performance());
        assert!(
            p.energy_balance > p.time_balance,
            "B_ε {:.2} vs B_τ {:.2}",
            p.energy_balance,
            p.time_balance
        );
    }

    #[test]
    fn most_efficient_setting_depends_on_intensity() {
        let m = model();
        let r = EnergyRoofline::new(&m);
        let low = r.most_efficient_setting(0.25);
        let high = r.most_efficient_setting(256.0);
        // At the very least both are valid settings; at low intensity the
        // best setting does not need a fast core.
        let low_core = low.operating_point().core.freq_mhz;
        let high_core = high.operating_point().core.freq_mhz;
        assert!(
            low_core <= high_core,
            "low intensity prefers a slower core: {low_core} vs {high_core}"
        );
    }

    #[test]
    fn render_produces_a_chart() {
        let m = model();
        let r = EnergyRoofline::new(&m);
        let chart = r.render(Setting::max_performance(), 40);
        assert!(chart.contains("energy roofline at 852/924"));
        assert_eq!(chart.lines().count(), 13);
        assert!(chart.contains('#'));
    }
}
