//! Model instantiation: design-matrix construction and NNLS estimation
//! (the paper's Section II-C).
//!
//! Every measurement contributes one row.  For a sample with op counts
//! `n_k`, duration `T`, and setting voltages `(V_p, V_m)`, the row is
//!
//! ```text
//! [ n_SP·V_p²  n_DP·V_p²  n_INT·V_p²  (n_SM+n_L1)·V_p²  n_L2·V_p²
//!   n_DRAM·V_m²  V_p·T  V_m·T  T ]
//! ```
//!
//! and the response is the measured energy in joules.  The shared-memory
//! and L1 counts share one column because on the Kepler SMX they are the
//! same physical SRAM array (the paper's Table I likewise carries a
//! single "SM" column); the fitted coefficient is assigned to both
//! classes.  Coefficients are constrained non-negative with Lawson–Hanson
//! NNLS, exactly as in the paper — unconstrained least squares on noisy
//! power data happily produces negative energies per op, which are
//! physically meaningless.

use crate::model::EnergyModel;
use compat::error::{PipelineError, PipelineResult};
use dvfs_linalg::{nnls, nnls_ridge, Matrix, NnlsOptions, QrFactorization};
use dvfs_microbench::Sample;
use tk1_sim::{OpClass, Setting};

/// Number of fitted coefficients: 6 op columns (SM+L1 merged), 2 leakage
/// terms, and `P_misc`.
pub const NUM_COLUMNS: usize = 9;

/// Human-readable names of the fitted terms, aligned with the design
/// columns (used in [`FitDiagnostics`]).
pub const COLUMN_NAMES: [&str; NUM_COLUMNS] =
    ["c0_sp", "c0_dp", "c0_int", "c0_sm_l1", "c0_l2", "c0_dram", "c1_proc", "c1_mem", "p_misc"];

/// Tuning of the hardened fit ladder.
#[derive(Debug, Clone)]
pub struct FitOptions {
    /// When true, samples whose relative residual lies far outside the
    /// robust (median/MAD) band are rejected and the model refitted once
    /// without them.  Off by default so fault-free fits are bitwise
    /// identical to the unhardened estimator.
    pub reject_row_outliers: bool,
    /// MAD multiples beyond which a row counts as an outlier.
    pub outlier_cutoff: f64,
    /// Condition-estimate threshold above which (near-)collinear columns
    /// are dropped before the NNLS solve.
    pub condition_limit: f64,
    /// Tikhonov parameter of the ridge fallback used when the plain
    /// solve still fails (applied to the column-scaled design).
    pub ridge_lambda: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            reject_row_outliers: false,
            outlier_cutoff: 6.0,
            condition_limit: 1e10,
            ridge_lambda: 1e-8,
        }
    }
}

/// What the graceful-degradation ladder actually did during a fit.
#[derive(Debug, Clone, Default)]
pub struct FitDiagnostics {
    /// Condition estimate of the column-scaled design matrix.
    pub condition_estimate: f64,
    /// Design columns excluded from the solve (zero excitation or
    /// near-collinear); their coefficients are reported as zero.
    pub dropped_columns: Vec<usize>,
    /// Ridge parameter of the fallback solve, if it was needed.
    pub ridge_lambda: Option<f64>,
    /// Fitted terms that hit their physical-range clamp.
    pub clamped_terms: Vec<&'static str>,
    /// Rows rejected by the robust residual screen.
    pub rows_rejected: usize,
    /// Free-form notes describing each degradation step taken.
    pub notes: Vec<String>,
}

impl FitDiagnostics {
    /// True when any rung of the degradation ladder fired — the fit is
    /// usable but should be reported alongside these diagnostics.
    pub fn degraded(&self) -> bool {
        !self.dropped_columns.is_empty()
            || self.ridge_lambda.is_some()
            || !self.clamped_terms.is_empty()
            || self.rows_rejected > 0
    }
}

/// Outcome of a model fit.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// The estimated model.
    pub model: EnergyModel,
    /// Residual 2-norm of the NNLS solve, J.
    pub residual_norm_j: f64,
    /// Number of samples used.
    pub samples: usize,
    /// Root-mean-square relative training error (fraction).
    pub train_rms_rel: f64,
    /// Degradation-ladder bookkeeping for this fit.
    pub diagnostics: FitDiagnostics,
}

/// Builds the design row for one sample (exposed for tests and for the
/// cross-validation driver).
pub fn design_row(sample: &Sample) -> [f64; NUM_COLUMNS] {
    let op = sample.setting.operating_point();
    let vp2 = op.core.voltage_v * op.core.voltage_v;
    let vm2 = op.mem.voltage_v * op.mem.voltage_v;
    let ops = &sample.ops;
    [
        ops.get(OpClass::FlopSp) * vp2,
        ops.get(OpClass::FlopDp) * vp2,
        ops.get(OpClass::Int) * vp2,
        (ops.get(OpClass::Shared) + ops.get(OpClass::L1)) * vp2,
        ops.get(OpClass::L2) * vp2,
        ops.get(OpClass::Dram) * vm2,
        op.core.voltage_v * sample.time_s,
        op.mem.voltage_v * sample.time_s,
        sample.time_s,
    ]
}

/// Fits the model to a set of samples by column-scaled NNLS.
///
/// ```
/// use dvfs_energy_model::fit_model;
/// use dvfs_microbench::{run_sweep, MicrobenchKind, SweepConfig};
///
/// let mut config = SweepConfig::default();
/// config.kinds = vec![MicrobenchKind::L2];   // one family, for speed
/// let dataset = run_sweep(&config);
/// let report = fit_model(dataset.training());
/// assert!(report.model.constant_power_w(tk1_sim::Setting::max_performance()) > 3.0);
/// ```
///
/// # Panics
/// Panics if fewer than [`NUM_COLUMNS`] samples are supplied.
pub fn fit_model<'a>(samples: impl IntoIterator<Item = &'a Sample>) -> FitReport {
    let samples: Vec<&Sample> = samples.into_iter().collect();
    assert!(
        samples.len() >= NUM_COLUMNS,
        "need at least {NUM_COLUMNS} samples to identify the model, got {}",
        samples.len()
    );
    try_fit_model_with(samples, &FitOptions::default()).expect("NNLS on full-rank design")
}

/// Fallible fit with default options; see [`try_fit_model_with`].
pub fn try_fit_model<'a>(
    samples: impl IntoIterator<Item = &'a Sample>,
) -> PipelineResult<FitReport> {
    try_fit_model_with(samples, &FitOptions::default())
}

/// Fits the model through the graceful-degradation ladder.
///
/// The rungs, in order, with every step recorded in
/// [`FitReport::diagnostics`]:
///
/// 1. **Identifiability** — fewer than [`NUM_COLUMNS`] samples is an
///    immediate [`PipelineError::InsufficientData`].
/// 2. **Column screen** — a QR condition estimate of the column-scaled
///    design; above `condition_limit` the (near-)collinear columns are
///    dropped and reported with zero coefficients.
/// 3. **NNLS** — the plain Lawson–Hanson solve.
/// 4. **Ridge fallback** — if the plain solve still fails (singular or
///    non-convergent), retry with Tikhonov regularization.
/// 5. **Physical clamps** — fitted terms beyond physically possible
///    magnitudes are clamped and flagged.
///
/// With `reject_row_outliers` set, a robust median/MAD screen on the
/// relative residuals runs after the first solve and the model is
/// refitted once without the flagged rows — the defense against
/// corrupted measurements that slipped past the sweep's gates.
pub fn try_fit_model_with<'a>(
    samples: impl IntoIterator<Item = &'a Sample>,
    options: &FitOptions,
) -> PipelineResult<FitReport> {
    let samples: Vec<&Sample> = samples.into_iter().collect();
    if samples.len() < NUM_COLUMNS {
        return Err(PipelineError::InsufficientData {
            needed: NUM_COLUMNS,
            got: samples.len(),
            context: "fit_model design matrix".to_string(),
        });
    }

    let (mut x, mut residual_norm, mut diagnostics) = solve_rows(&samples, options)?;

    if options.reject_row_outliers {
        // Robust residual screen: relative residuals of the first fit,
        // median/MAD-banded.  The 5% floor keeps the screen from firing
        // on the ordinary noise of a clean sweep.
        let rels: Vec<f64> = samples
            .iter()
            .map(|s| {
                let pred = dvfs_linalg::dot(&design_row(s), &x);
                (pred - s.energy_j) / s.energy_j
            })
            .collect();
        let med = median(&rels);
        let mad = median(&rels.iter().map(|r| (r - med).abs()).collect::<Vec<_>>());
        let width = (options.outlier_cutoff * 1.4826 * mad).max(0.05);
        let keep: Vec<&Sample> = samples
            .iter()
            .zip(&rels)
            .filter(|(_, &r)| (r - med).abs() <= width)
            .map(|(&s, _)| s)
            .collect();
        let rejected = samples.len() - keep.len();
        if rejected > 0 && keep.len() >= NUM_COLUMNS {
            let (x2, r2, mut d2) = solve_rows(&keep, options)?;
            d2.rows_rejected = rejected;
            d2.notes.push(format!(
                "rejected {rejected} of {} rows beyond {:.1}% of the median residual",
                samples.len(),
                width * 100.0
            ));
            x = x2;
            residual_norm = r2;
            diagnostics = d2;
        }
    }

    // Physical-range clamps: per-op energies are at most ~10 nJ on this
    // class of hardware and no leakage/constant term can exceed the
    // board's power envelope.  A clean fit sits orders of magnitude
    // inside these caps; only a degenerate solve can reach them.
    const CAPS: [f64; NUM_COLUMNS] = [1e-8, 1e-8, 1e-8, 1e-8, 1e-8, 1e-8, 20.0, 20.0, 20.0];
    for j in 0..NUM_COLUMNS {
        if x[j] > CAPS[j] {
            x[j] = CAPS[j];
            diagnostics.clamped_terms.push(COLUMN_NAMES[j]);
        }
    }

    // Assemble the model; the merged SM/L1 coefficient feeds both classes.
    let mut c0 = [0.0f64; tk1_sim::NUM_OP_CLASSES];
    c0[OpClass::FlopSp.index()] = x[0] * 1e12;
    c0[OpClass::FlopDp.index()] = x[1] * 1e12;
    c0[OpClass::Int.index()] = x[2] * 1e12;
    c0[OpClass::Shared.index()] = x[3] * 1e12;
    c0[OpClass::L1.index()] = x[3] * 1e12;
    c0[OpClass::L2.index()] = x[4] * 1e12;
    c0[OpClass::Dram.index()] = x[5] * 1e12;
    let model = EnergyModel {
        c0_pj_per_v2: c0,
        c1_proc_w_per_v: x[6],
        c1_mem_w_per_v: x[7],
        p_misc_w: x[8],
    };

    // Training-set relative error, over every supplied sample (including
    // any the robust screen excluded from the solve — the report stays
    // honest about the data it was handed).
    let mut sq = 0.0;
    for s in &samples {
        let pred = model.predict_energy_j(&s.ops, s.setting, s.time_s);
        let rel = crate::stats::relative_error(pred, s.energy_j);
        sq += rel * rel;
    }
    let train_rms_rel = (sq / samples.len() as f64).sqrt();

    Ok(FitReport {
        model,
        residual_norm_j: residual_norm,
        samples: samples.len(),
        train_rms_rel,
        diagnostics,
    })
}

/// One pass of the column-screened, ridge-backed NNLS solve.  Returns
/// the unscaled coefficient vector (zeros in dropped columns), the
/// residual norm, and the diagnostics accumulated so far.
fn solve_rows(
    samples: &[&Sample],
    options: &FitOptions,
) -> PipelineResult<([f64; NUM_COLUMNS], f64, FitDiagnostics)> {
    let mut data = Vec::with_capacity(samples.len() * NUM_COLUMNS);
    let mut b = Vec::with_capacity(samples.len());
    for s in samples {
        data.extend_from_slice(&design_row(s));
        b.push(s.energy_j);
    }
    let a = Matrix::from_vec(samples.len(), NUM_COLUMNS, data);

    // Column scaling: op-count columns are ~1e9 while time columns are
    // ~1e-1; normalizing each to unit max keeps the QR inside NNLS well
    // conditioned.  Positive scaling preserves the non-negativity
    // constraint and is undone on the way out.
    let mut scales = [0.0f64; NUM_COLUMNS];
    for j in 0..NUM_COLUMNS {
        let mx = (0..a.rows()).map(|i| a[(i, j)].abs()).fold(0.0f64, f64::max);
        scales[j] = if mx > 0.0 { mx } else { 1.0 };
    }
    let scaled = Matrix::from_fn(a.rows(), NUM_COLUMNS, |i, j| a[(i, j)] / scales[j]);

    let mut diagnostics = FitDiagnostics::default();
    let qr = QrFactorization::new(&scaled)?;
    diagnostics.condition_estimate = qr.condition_estimate();
    if diagnostics.condition_estimate > options.condition_limit {
        diagnostics.dropped_columns = qr.small_diagonal_columns(1.0 / options.condition_limit);
        if !diagnostics.dropped_columns.is_empty() {
            let names: Vec<&str> =
                diagnostics.dropped_columns.iter().map(|&j| COLUMN_NAMES[j]).collect();
            diagnostics.notes.push(format!(
                "condition estimate {:.2e} exceeds limit; dropped columns {:?}",
                diagnostics.condition_estimate, names
            ));
        }
    }
    let kept: Vec<usize> =
        (0..NUM_COLUMNS).filter(|j| !diagnostics.dropped_columns.contains(j)).collect();
    if kept.is_empty() {
        return Err(PipelineError::Numeric {
            routine: "fit_model".to_string(),
            detail: "every design column was dropped as degenerate".to_string(),
        });
    }
    let work =
        if diagnostics.dropped_columns.is_empty() { scaled } else { scaled.select_columns(&kept) };

    let sol = match nnls(&work, &b, &NnlsOptions::default()) {
        Ok(sol) => sol,
        Err(
            e @ (dvfs_linalg::LinalgError::Singular(_)
            | dvfs_linalg::LinalgError::NoConvergence { .. }),
        ) => {
            diagnostics.ridge_lambda = Some(options.ridge_lambda);
            diagnostics.notes.push(format!(
                "plain NNLS failed ({e}); fell back to ridge λ={:.1e}",
                options.ridge_lambda
            ));
            nnls_ridge(&work, &b, options.ridge_lambda, &NnlsOptions::default())?
        }
        Err(e) => return Err(e.into()),
    };

    let mut x = [0.0f64; NUM_COLUMNS];
    for (k, &j) in kept.iter().enumerate() {
        x[j] = sol.x[k] / scales[j];
    }
    Ok((x, sol.residual_norm, diagnostics))
}

/// Median of a slice (NaN-free input assumed); 0 for an empty slice.
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

/// Convenience: predicted energy for an arbitrary (ops, setting, time)
/// triple under a fitted model — the call sites of Figures 5–7 all look
/// like this.
pub fn predict(model: &EnergyModel, sample: &Sample) -> f64 {
    model.predict_energy_j(&sample.ops, sample.setting, sample.time_s)
}

/// Builds a `Sample` for an application run (no microbenchmark family).
pub fn application_sample(
    ops: tk1_sim::OpVector,
    setting: Setting,
    setting_type: dvfs_microbench::SettingType,
    time_s: f64,
    energy_j: f64,
) -> Sample {
    Sample { kind: None, intensity: None, ops, setting, setting_type, time_s, energy_j }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_microbench::{run_sweep, MicrobenchKind, SweepConfig};

    fn sweep(trials: usize) -> dvfs_microbench::Dataset {
        run_sweep(&SweepConfig { trials, faults: None, ..SweepConfig::default() })
    }

    #[test]
    fn design_row_uses_domain_voltages() {
        use dvfs_microbench::SettingType;
        use tk1_sim::OpVector;
        let s = application_sample(
            OpVector::from_pairs(&[(OpClass::FlopSp, 10.0), (OpClass::Dram, 3.0)]),
            Setting::from_frequencies(852.0, 528.0).unwrap(),
            SettingType::Training,
            2.0,
            1.0,
        );
        let row = design_row(&s);
        assert!((row[0] - 10.0 * 1.030 * 1.030).abs() < 1e-9);
        assert!((row[5] - 3.0 * 0.880 * 0.880).abs() < 1e-9);
        assert!((row[6] - 1.030 * 2.0).abs() < 1e-9);
        assert!((row[7] - 0.880 * 2.0).abs() < 1e-9);
        assert_eq!(row[8], 2.0);
        assert_eq!(row[1], 0.0);
    }

    #[test]
    fn recovers_truth_from_ideal_measurements() {
        // Run the sweep on a noiseless device with an ideal meter: the
        // fitted constants must match the simulator's hidden truth.
        use dvfs_microbench::{dataset::table1_settings, Sample};
        use powermon_sim::PowerMon;
        use tk1_sim::Device;
        let mut ds = dvfs_microbench::Dataset::new();
        let mut dev = Device::ideal(1);
        let mut pm = PowerMon::ideal(2);
        for (setting, ty) in table1_settings() {
            dev.set_operating_point(setting);
            for kind in MicrobenchKind::ALL {
                for mb in kind.instances() {
                    let m = pm.measure(&mut dev, mb.kernel());
                    ds.push(Sample {
                        kind: Some(kind.name().into()),
                        intensity: Some(mb.intensity),
                        ops: mb.kernel().ops,
                        setting,
                        setting_type: ty,
                        time_s: m.execution.duration_s,
                        energy_j: m.measured_energy_j,
                    });
                }
            }
        }
        let report = fit_model(ds.training());
        let truth = tk1_sim::TruthConstants::ideal();
        // Classes the suite exercises directly must be recovered tightly.
        for class in [OpClass::FlopSp, OpClass::FlopDp, OpClass::Int, OpClass::Dram] {
            let got = report.model.c0_pj_per_v2[class.index()];
            let want = truth.c0_pj_per_v2[class.index()];
            let rel = (got - want).abs() / want;
            assert!(rel < 0.05, "{class:?}: {got:.2} vs {want:.2} ({rel:.3})");
        }
        assert!(report.train_rms_rel < 0.02, "rms {:.4}", report.train_rms_rel);
    }

    #[test]
    fn noisy_fit_is_close_and_nonnegative() {
        let ds = sweep(1);
        let report = fit_model(ds.training());
        for &c in &report.model.c0_pj_per_v2 {
            assert!(c >= 0.0);
        }
        assert!(report.model.c1_proc_w_per_v >= 0.0);
        assert!(report.model.c1_mem_w_per_v >= 0.0);
        assert!(report.model.p_misc_w >= 0.0);
        // Recovered SP cost within ~15% of truth despite noise and the
        // activity nonlinearity.
        let truth = tk1_sim::TruthConstants::default();
        let rel =
            (report.model.c0_pj_per_v2[0] - truth.c0_pj_per_v2[0]).abs() / truth.c0_pj_per_v2[0];
        assert!(rel < 0.15, "SP ĉ0 off by {rel:.3}");
        assert!(report.train_rms_rel < 0.08, "rms {:.4}", report.train_rms_rel);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_samples_rejected() {
        let ds = dvfs_microbench::Dataset::new();
        let _ = fit_model(ds.training());
    }

    #[test]
    fn too_few_samples_is_an_error_on_the_fallible_path() {
        let ds = dvfs_microbench::Dataset::new();
        match try_fit_model(ds.training()) {
            Err(compat::error::PipelineError::InsufficientData { needed, got, .. }) => {
                assert_eq!(needed, NUM_COLUMNS);
                assert_eq!(got, 0);
            }
            other => panic!("expected InsufficientData, got {other:?}"),
        }
    }

    #[test]
    fn clean_fit_is_bitwise_unchanged_by_the_ladder() {
        let ds = sweep(1);
        let plain = fit_model(ds.training());
        let laddered = try_fit_model_with(ds.training(), &FitOptions::default()).unwrap();
        assert!(!laddered.diagnostics.degraded(), "{:?}", laddered.diagnostics);
        for k in 0..tk1_sim::NUM_OP_CLASSES {
            assert_eq!(
                plain.model.c0_pj_per_v2[k].to_bits(),
                laddered.model.c0_pj_per_v2[k].to_bits()
            );
        }
        assert_eq!(plain.model.p_misc_w.to_bits(), laddered.model.p_misc_w.to_bits());
        assert_eq!(plain.train_rms_rel.to_bits(), laddered.train_rms_rel.to_bits());
    }

    #[test]
    fn unexcited_columns_are_dropped_and_reported() {
        // A single-family sweep excites only the L2 and time columns;
        // the ladder must drop the rest, report them, and still fit.
        let ds = run_sweep(&SweepConfig {
            kinds: vec![MicrobenchKind::L2],
            faults: None,
            ..SweepConfig::default()
        });
        let report = try_fit_model(ds.training()).unwrap();
        assert!(report.diagnostics.degraded());
        assert!(report.diagnostics.condition_estimate > 1e10);
        assert!(!report.diagnostics.dropped_columns.is_empty());
        for &j in &report.diagnostics.dropped_columns {
            assert!(j != 4 && j != 8, "excited columns must survive: dropped {j}");
        }
        // Dropped columns must be reported with zero coefficients.
        for &j in &report.diagnostics.dropped_columns {
            if j < 6 {
                let class_coeffs = &report.model.c0_pj_per_v2;
                let val = match j {
                    0 => class_coeffs[OpClass::FlopSp.index()],
                    1 => class_coeffs[OpClass::FlopDp.index()],
                    2 => class_coeffs[OpClass::Int.index()],
                    3 => class_coeffs[OpClass::Shared.index()],
                    5 => class_coeffs[OpClass::Dram.index()],
                    _ => 0.0,
                };
                assert_eq!(val, 0.0, "dropped column {j} must fit to zero");
            }
        }
        assert!(report.train_rms_rel < 0.10, "rms {:.4}", report.train_rms_rel);
    }

    #[test]
    fn row_outlier_rejection_recovers_a_corrupted_training_set() {
        let ds = sweep(1);
        let mut corrupted: Vec<dvfs_microbench::Sample> = ds.training().cloned().collect();
        // Corrupt ~8% of rows with gross energy errors (spikes a gated
        // sweep could only partially absorb).
        let mut n_corrupted = 0;
        for (i, s) in corrupted.iter_mut().enumerate() {
            if i % 13 == 5 {
                s.energy_j *= 4.0;
                n_corrupted += 1;
            }
        }
        let naive = try_fit_model(corrupted.iter()).unwrap();
        let robust = try_fit_model_with(
            corrupted.iter(),
            &FitOptions { reject_row_outliers: true, ..FitOptions::default() },
        )
        .unwrap();
        // The screen must find (at least) the corrupted rows, and not
        // reject wholesale.
        assert!(robust.diagnostics.rows_rejected >= n_corrupted, "{:?}", robust.diagnostics);
        assert!(robust.diagnostics.rows_rejected < corrupted.len() / 4);
        // The meaningful comparison: held-out prediction quality on the
        // *clean* validation split.
        let holdout_err = |m: &crate::model::EnergyModel| {
            let errs: Vec<f64> = ds
                .validation()
                .map(|s| crate::stats::relative_error(predict(m, s), s.energy_j))
                .collect();
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let naive_err = holdout_err(&naive.model);
        let robust_err = holdout_err(&robust.model);
        assert!(
            robust_err < naive_err,
            "robust holdout {:.4} must beat naive {:.4}",
            robust_err,
            naive_err
        );
        assert!(robust_err < 0.08, "robust holdout error {:.4}", robust_err);
    }
}
