//! Model instantiation: design-matrix construction and NNLS estimation
//! (the paper's Section II-C).
//!
//! Every measurement contributes one row.  For a sample with op counts
//! `n_k`, duration `T`, and setting voltages `(V_p, V_m)`, the row is
//!
//! ```text
//! [ n_SP·V_p²  n_DP·V_p²  n_INT·V_p²  (n_SM+n_L1)·V_p²  n_L2·V_p²
//!   n_DRAM·V_m²  V_p·T  V_m·T  T ]
//! ```
//!
//! and the response is the measured energy in joules.  The shared-memory
//! and L1 counts share one column because on the Kepler SMX they are the
//! same physical SRAM array (the paper's Table I likewise carries a
//! single "SM" column); the fitted coefficient is assigned to both
//! classes.  Coefficients are constrained non-negative with Lawson–Hanson
//! NNLS, exactly as in the paper — unconstrained least squares on noisy
//! power data happily produces negative energies per op, which are
//! physically meaningless.

use crate::model::EnergyModel;
use dvfs_linalg::{nnls, Matrix, NnlsOptions};
use dvfs_microbench::Sample;
use tk1_sim::{OpClass, Setting};

/// Number of fitted coefficients: 6 op columns (SM+L1 merged), 2 leakage
/// terms, and `P_misc`.
pub const NUM_COLUMNS: usize = 9;

/// Outcome of a model fit.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// The estimated model.
    pub model: EnergyModel,
    /// Residual 2-norm of the NNLS solve, J.
    pub residual_norm_j: f64,
    /// Number of samples used.
    pub samples: usize,
    /// Root-mean-square relative training error (fraction).
    pub train_rms_rel: f64,
}

/// Builds the design row for one sample (exposed for tests and for the
/// cross-validation driver).
pub fn design_row(sample: &Sample) -> [f64; NUM_COLUMNS] {
    let op = sample.setting.operating_point();
    let vp2 = op.core.voltage_v * op.core.voltage_v;
    let vm2 = op.mem.voltage_v * op.mem.voltage_v;
    let ops = &sample.ops;
    [
        ops.get(OpClass::FlopSp) * vp2,
        ops.get(OpClass::FlopDp) * vp2,
        ops.get(OpClass::Int) * vp2,
        (ops.get(OpClass::Shared) + ops.get(OpClass::L1)) * vp2,
        ops.get(OpClass::L2) * vp2,
        ops.get(OpClass::Dram) * vm2,
        op.core.voltage_v * sample.time_s,
        op.mem.voltage_v * sample.time_s,
        sample.time_s,
    ]
}

/// Fits the model to a set of samples by column-scaled NNLS.
///
/// ```
/// use dvfs_energy_model::fit_model;
/// use dvfs_microbench::{run_sweep, MicrobenchKind, SweepConfig};
///
/// let mut config = SweepConfig::default();
/// config.kinds = vec![MicrobenchKind::L2];   // one family, for speed
/// let dataset = run_sweep(&config);
/// let report = fit_model(dataset.training());
/// assert!(report.model.constant_power_w(tk1_sim::Setting::max_performance()) > 3.0);
/// ```
///
/// # Panics
/// Panics if fewer than [`NUM_COLUMNS`] samples are supplied.
pub fn fit_model<'a>(samples: impl IntoIterator<Item = &'a Sample>) -> FitReport {
    let samples: Vec<&Sample> = samples.into_iter().collect();
    assert!(
        samples.len() >= NUM_COLUMNS,
        "need at least {NUM_COLUMNS} samples to identify the model, got {}",
        samples.len()
    );

    let mut data = Vec::with_capacity(samples.len() * NUM_COLUMNS);
    let mut b = Vec::with_capacity(samples.len());
    for s in &samples {
        data.extend_from_slice(&design_row(s));
        b.push(s.energy_j);
    }
    let a = Matrix::from_vec(samples.len(), NUM_COLUMNS, data);

    // Column scaling: op-count columns are ~1e9 while time columns are
    // ~1e-1; normalizing each to unit max keeps the QR inside NNLS well
    // conditioned.  Positive scaling preserves the non-negativity
    // constraint and is undone on the way out.
    let mut scales = [0.0f64; NUM_COLUMNS];
    for j in 0..NUM_COLUMNS {
        let mx = (0..a.rows()).map(|i| a[(i, j)].abs()).fold(0.0f64, f64::max);
        scales[j] = if mx > 0.0 { mx } else { 1.0 };
    }
    let scaled = Matrix::from_fn(a.rows(), NUM_COLUMNS, |i, j| a[(i, j)] / scales[j]);
    let sol = nnls(&scaled, &b, &NnlsOptions::default()).expect("NNLS on full-rank design");
    let mut x = [0.0f64; NUM_COLUMNS];
    for j in 0..NUM_COLUMNS {
        x[j] = sol.x[j] / scales[j];
    }

    // Assemble the model; the merged SM/L1 coefficient feeds both classes.
    let mut c0 = [0.0f64; tk1_sim::NUM_OP_CLASSES];
    c0[OpClass::FlopSp.index()] = x[0] * 1e12;
    c0[OpClass::FlopDp.index()] = x[1] * 1e12;
    c0[OpClass::Int.index()] = x[2] * 1e12;
    c0[OpClass::Shared.index()] = x[3] * 1e12;
    c0[OpClass::L1.index()] = x[3] * 1e12;
    c0[OpClass::L2.index()] = x[4] * 1e12;
    c0[OpClass::Dram.index()] = x[5] * 1e12;
    let model = EnergyModel {
        c0_pj_per_v2: c0,
        c1_proc_w_per_v: x[6],
        c1_mem_w_per_v: x[7],
        p_misc_w: x[8],
    };

    // Training-set relative error.
    let mut sq = 0.0;
    for s in &samples {
        let pred = model.predict_energy_j(&s.ops, s.setting, s.time_s);
        let rel = crate::stats::relative_error(pred, s.energy_j);
        sq += rel * rel;
    }
    let train_rms_rel = (sq / samples.len() as f64).sqrt();

    FitReport { model, residual_norm_j: sol.residual_norm, samples: samples.len(), train_rms_rel }
}

/// Convenience: predicted energy for an arbitrary (ops, setting, time)
/// triple under a fitted model — the call sites of Figures 5–7 all look
/// like this.
pub fn predict(model: &EnergyModel, sample: &Sample) -> f64 {
    model.predict_energy_j(&sample.ops, sample.setting, sample.time_s)
}

/// Builds a `Sample` for an application run (no microbenchmark family).
pub fn application_sample(
    ops: tk1_sim::OpVector,
    setting: Setting,
    setting_type: dvfs_microbench::SettingType,
    time_s: f64,
    energy_j: f64,
) -> Sample {
    Sample { kind: None, intensity: None, ops, setting, setting_type, time_s, energy_j }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_microbench::{run_sweep, MicrobenchKind, SweepConfig};

    fn sweep(trials: usize) -> dvfs_microbench::Dataset {
        run_sweep(&SweepConfig { trials, ..SweepConfig::default() })
    }

    #[test]
    fn design_row_uses_domain_voltages() {
        use dvfs_microbench::SettingType;
        use tk1_sim::OpVector;
        let s = application_sample(
            OpVector::from_pairs(&[(OpClass::FlopSp, 10.0), (OpClass::Dram, 3.0)]),
            Setting::from_frequencies(852.0, 528.0).unwrap(),
            SettingType::Training,
            2.0,
            1.0,
        );
        let row = design_row(&s);
        assert!((row[0] - 10.0 * 1.030 * 1.030).abs() < 1e-9);
        assert!((row[5] - 3.0 * 0.880 * 0.880).abs() < 1e-9);
        assert!((row[6] - 1.030 * 2.0).abs() < 1e-9);
        assert!((row[7] - 0.880 * 2.0).abs() < 1e-9);
        assert_eq!(row[8], 2.0);
        assert_eq!(row[1], 0.0);
    }

    #[test]
    fn recovers_truth_from_ideal_measurements() {
        // Run the sweep on a noiseless device with an ideal meter: the
        // fitted constants must match the simulator's hidden truth.
        use dvfs_microbench::{dataset::table1_settings, Sample};
        use powermon_sim::PowerMon;
        use tk1_sim::Device;
        let mut ds = dvfs_microbench::Dataset::new();
        let mut dev = Device::ideal(1);
        let mut pm = PowerMon::ideal(2);
        for (setting, ty) in table1_settings() {
            dev.set_operating_point(setting);
            for kind in MicrobenchKind::ALL {
                for mb in kind.instances() {
                    let m = pm.measure(&mut dev, mb.kernel());
                    ds.push(Sample {
                        kind: Some(kind.name().into()),
                        intensity: Some(mb.intensity),
                        ops: mb.kernel().ops,
                        setting,
                        setting_type: ty,
                        time_s: m.execution.duration_s,
                        energy_j: m.measured_energy_j,
                    });
                }
            }
        }
        let report = fit_model(ds.training());
        let truth = tk1_sim::TruthConstants::ideal();
        // Classes the suite exercises directly must be recovered tightly.
        for class in [OpClass::FlopSp, OpClass::FlopDp, OpClass::Int, OpClass::Dram] {
            let got = report.model.c0_pj_per_v2[class.index()];
            let want = truth.c0_pj_per_v2[class.index()];
            let rel = (got - want).abs() / want;
            assert!(rel < 0.05, "{class:?}: {got:.2} vs {want:.2} ({rel:.3})");
        }
        assert!(report.train_rms_rel < 0.02, "rms {:.4}", report.train_rms_rel);
    }

    #[test]
    fn noisy_fit_is_close_and_nonnegative() {
        let ds = sweep(1);
        let report = fit_model(ds.training());
        for &c in &report.model.c0_pj_per_v2 {
            assert!(c >= 0.0);
        }
        assert!(report.model.c1_proc_w_per_v >= 0.0);
        assert!(report.model.c1_mem_w_per_v >= 0.0);
        assert!(report.model.p_misc_w >= 0.0);
        // Recovered SP cost within ~15% of truth despite noise and the
        // activity nonlinearity.
        let truth = tk1_sim::TruthConstants::default();
        let rel =
            (report.model.c0_pj_per_v2[0] - truth.c0_pj_per_v2[0]).abs() / truth.c0_pj_per_v2[0];
        assert!(rel < 0.15, "SP ĉ0 off by {rel:.3}");
        assert!(report.train_rms_rel < 0.08, "rms {:.4}", report.train_rms_rel);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_samples_rejected() {
        let ds = dvfs_microbench::Dataset::new();
        let _ = fit_model(ds.training());
    }
}
