//! Property-based tests for the linear-algebra kernels.

use compat::prop::prelude::*;
use dvfs_linalg::{lstsq, nnls, pseudo_inverse, Matrix, NnlsOptions, QrFactorization, Svd};

/// Bounded, finite matrix entries keep the factorizations in a sane
/// numeric regime.
fn entry() -> impl Strategy<Value = f64> {
    (-100.0f64..100.0).prop_filter("nonzero-ish", |x| x.abs() > 1e-6 || *x == 0.0)
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    compat::prop::collection::vec(entry(), rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_reconstructs_the_matrix(a in matrix(6, 4)) {
        let f = QrFactorization::new(&a).unwrap();
        let qr = f.thin_q().matmul(&f.r()).unwrap();
        prop_assert!(qr.approx_eq(&a, 1e-9), "QR != A");
    }

    #[test]
    fn qr_q_columns_are_orthonormal(a in matrix(7, 3)) {
        let q = QrFactorization::new(&a).unwrap().thin_q();
        let qtq = q.transpose().matmul(&q).unwrap();
        prop_assert!(qtq.approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn lstsq_residual_is_minimal(a in matrix(8, 3), perturb in compat::prop::collection::vec(-1.0f64..1.0, 3)) {
        // For any candidate x', ||A x' - b|| >= ||A x* - b||.
        let b: Vec<f64> = (0..8).map(|i| (i as f64).sin() * 10.0).collect();
        let x_star = match lstsq(&a, &b) {
            Ok(x) => x,
            Err(_) => return Ok(()), // singular draw: nothing to check
        };
        let resid = |x: &[f64]| -> f64 {
            a.matvec(x).iter().zip(&b).map(|(ax, bi)| (ax - bi) * (ax - bi)).sum()
        };
        let candidate: Vec<f64> =
            x_star.iter().zip(&perturb).map(|(x, p)| x + p).collect();
        prop_assert!(resid(&candidate) >= resid(&x_star) - 1e-6);
    }

    #[test]
    fn nnls_is_nonnegative_and_no_worse_than_clamped_lstsq(a in matrix(10, 4)) {
        let b: Vec<f64> = (0..10).map(|i| ((i * 7 % 11) as f64) - 3.0).collect();
        let sol = match nnls(&a, &b, &NnlsOptions::default()) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        for &x in &sol.x {
            prop_assert!(x >= 0.0);
        }
        // Clamping the unconstrained solution is a valid feasible point;
        // NNLS must match or beat it.
        if let Ok(unconstrained) = lstsq(&a, &b) {
            let clamped: Vec<f64> = unconstrained.iter().map(|&x| x.max(0.0)).collect();
            let resid = |x: &[f64]| -> f64 {
                a.matvec(x).iter().zip(&b).map(|(ax, bi)| (ax - bi) * (ax - bi)).sum::<f64>().sqrt()
            };
            prop_assert!(sol.residual_norm <= resid(&clamped) + 1e-8);
        }
    }

    #[test]
    fn nnls_solves_consistent_nonnegative_systems_exactly(
        x_true in compat::prop::collection::vec(0.0f64..10.0, 3),
        a in matrix(9, 3),
    ) {
        let b = a.matvec(&x_true);
        let sol = match nnls(&a, &b, &NnlsOptions::default()) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        // The system is consistent with a feasible solution, so the
        // optimum residual is (numerically) zero.
        let scale = dvfs_linalg::norm2(&b).max(1.0);
        prop_assert!(sol.residual_norm <= 1e-7 * scale, "residual {}", sol.residual_norm);
    }

    #[test]
    fn svd_reconstructs_and_orders(a in matrix(6, 4)) {
        let svd = match Svd::new(&a) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        prop_assert!(svd.reconstruct().approx_eq(&a, 1e-8));
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12, "descending singular values");
        }
        for &s in &svd.sigma {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn svd_frobenius_identity(a in matrix(5, 5)) {
        let svd = match Svd::new(&a) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let fro = a.norm_fro();
        let sig = dvfs_linalg::norm2(&svd.sigma);
        prop_assert!((fro - sig).abs() <= 1e-8 * fro.max(1.0));
    }

    #[test]
    fn pinv_satisfies_first_penrose_condition(a in matrix(5, 3)) {
        let p = match pseudo_inverse(&a, 1e-10) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        // With truncation the identity holds up to the dropped spectrum.
        let tol = 1e-6 * a.norm_fro().max(1.0);
        let diff = (&apa - &a).norm_fro();
        prop_assert!(diff <= tol, "||A P A - A|| = {diff}");
    }

    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-7));
    }

    #[test]
    fn transpose_reverses_products(a in matrix(3, 4), b in matrix(4, 2)) {
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(ab_t.approx_eq(&bt_at, 1e-9));
    }
}
