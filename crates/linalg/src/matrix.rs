//! Row-major dense matrix.
//!
//! The dimensions in this project are small (design matrices of a few
//! thousand rows by ~10 columns; KIFMM kernel matrices of a few hundred
//! square), so a straightforward row-major layout with cache-blocked
//! multiplication is both simple and fast enough.

#![allow(clippy::needless_range_loop)] // kernels index two operands by one induction variable
use crate::{LinalgError, Result};
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    /// Panics (debug) on dimension mismatch.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = crate::dot(self.row(i), x);
        }
        y
    }

    /// Matrix–vector product `A x` written into a caller-owned buffer
    /// (overwriting) — the allocation-free form hot loops use.  Same
    /// reduction order as [`Matrix::matvec`], so the results are
    /// bit-identical.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        for (i, yi) in out.iter_mut().enumerate() {
            *yi = crate::dot(self.row(i), x);
        }
    }

    /// Matrix–vector product accumulated onto `out`: `out += A x`.
    pub fn matvec_acc(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        for (i, yi) in out.iter_mut().enumerate() {
            *yi += crate::dot(self.row(i), x);
        }
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            crate::axpy(x[i], self.row(i), &mut y);
        }
        y
    }

    /// Matrix product `A B`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                context: "matmul",
                expected: (self.cols, other.cols),
                found: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: streams over `other`'s rows, cache-friendly for
        // row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                crate::axpy(aik, brow, orow);
            }
        }
        Ok(out)
    }

    /// Gram matrix `AᵀA` (symmetric), computed exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for row in 0..self.rows {
            let r = self.row(row);
            for j in 0..n {
                let rj = r[j];
                if rj == 0.0 {
                    continue;
                }
                for k in j..n {
                    g[(j, k)] += rj * r[k];
                }
            }
        }
        for j in 0..n {
            for k in 0..j {
                g[(j, k)] = g[(k, j)];
            }
        }
        g
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        crate::norm2(&self.data)
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Extracts the sub-matrix `rows x cols` starting at `(r0, c0)`.
    pub fn submatrix(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "submatrix out of range");
        Matrix::from_fn(rows, cols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Builds a matrix from a subset of this matrix's columns.
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, cols.len(), |i, j| self[(i, cols[j])])
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// True if all entries of `self` and `other` agree within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn shape_and_indexing() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn matvec_into_and_acc_match_allocating_form() {
        let m = sample();
        let x = [0.5, -1.0, 2.0];
        let alloc = m.matvec(&x);
        let mut into = vec![9.0; 2]; // overwritten
        m.matvec_into(&x, &mut into);
        assert_eq!(into, alloc);
        let mut acc = vec![1.0; 2];
        m.matvec_acc(&x, &mut acc);
        assert_eq!(acc, vec![1.0 + alloc[0], 1.0 + alloc[1]]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let m = sample();
        assert!(m.matmul(&sample()).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gram_equals_at_a() {
        let m = sample();
        let g = m.gram();
        let expected = m.transpose().matmul(&m).unwrap();
        assert!(g.approx_eq(&expected, 1e-14));
    }

    #[test]
    fn submatrix_and_select_columns() {
        let m = sample();
        let s = m.submatrix(0, 1, 2, 2);
        assert_eq!(s, Matrix::from_rows(&[&[2.0, 3.0], &[5.0, 6.0]]));
        let c = m.select_columns(&[2, 0]);
        assert_eq!(c, Matrix::from_rows(&[&[3.0, 1.0], &[6.0, 4.0]]));
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn add_sub_scale() {
        let m = sample();
        let z = &(&m + &m) - &(&m * 2.0);
        assert_eq!(z.norm_max(), 0.0);
    }

    #[test]
    fn from_diag_places_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn display_prints_all_rows() {
        let s = format!("{}", sample());
        assert_eq!(s.lines().count(), 2);
    }
}
