//! Moore–Penrose and Tikhonov-regularized pseudo-inverses.
//!
//! KIFMM's check-surface → equivalent-density solves invert severely
//! ill-conditioned kernel matrices; Ying, Biros & Zorin regularize them
//! with a truncated/regularized SVD, which is reproduced here.

use crate::{Matrix, Result, Svd};

/// Moore–Penrose pseudo-inverse via SVD with relative truncation `rtol`
/// (singular values below `rtol * sigma_max` are treated as zero).
pub fn pseudo_inverse(a: &Matrix, rtol: f64) -> Result<Matrix> {
    apply_filter(a, |s, smax| if s > rtol * smax { 1.0 / s } else { 0.0 })
}

/// Tikhonov-regularized pseudo-inverse: singular values are filtered with
/// `s / (s² + α²)` where `α = alpha_rel * sigma_max`.
///
/// This is the filter used for KIFMM equivalent-density solves; unlike hard
/// truncation it degrades gracefully as the kernel matrix's spectrum decays.
pub fn regularized_pseudo_inverse(a: &Matrix, alpha_rel: f64) -> Result<Matrix> {
    apply_filter(a, |s, smax| {
        let alpha = alpha_rel * smax;
        s / (s * s + alpha * alpha)
    })
}

fn apply_filter(a: &Matrix, filter: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
    let (m, n) = a.shape();
    // Jacobi SVD requires rows >= cols; handle wide matrices through the
    // transpose identity pinv(A) = pinv(Aᵀ)ᵀ.
    if m < n {
        return Ok(apply_filter(&a.transpose(), filter)?.transpose());
    }
    let svd = Svd::new(a)?;
    let smax = svd.sigma.first().copied().unwrap_or(0.0);
    // pinv = V Σ⁺ Uᵀ.
    let mut v_filtered = svd.v.clone();
    for j in 0..svd.sigma.len() {
        let f = if smax > 0.0 { filter(svd.sigma[j], smax) } else { 0.0 };
        for i in 0..v_filtered.rows() {
            v_filtered[(i, j)] *= f;
        }
    }
    v_filtered.matmul(&svd.u.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let p = pseudo_inverse(&a, 1e-12).unwrap();
        let id = a.matmul(&p).unwrap();
        assert!(id.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn pinv_satisfies_penrose_conditions() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let p = pseudo_inverse(&a, 1e-12).unwrap();
        // A P A = A and P A P = P.
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(apa.approx_eq(&a, 1e-10));
        assert!(pap.approx_eq(&p, 1e-10));
    }

    #[test]
    fn pinv_of_wide_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]);
        let p = pseudo_inverse(&a, 1e-12).unwrap();
        assert_eq!(p.shape(), (3, 2));
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.approx_eq(&a, 1e-10));
    }

    #[test]
    fn truncation_kills_tiny_singular_values() {
        // Rank-1 matrix plus tiny perturbation: pinv should not blow up.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-13]]);
        let p = pseudo_inverse(&a, 1e-8).unwrap();
        assert!(p.norm_max() < 10.0, "truncated pinv stays bounded: {}", p.norm_max());
    }

    #[test]
    fn tikhonov_is_bounded_by_half_inverse_alpha() {
        let a = Matrix::from_rows(&[&[1e-9, 0.0], &[0.0, 1.0]]);
        let alpha_rel = 1e-3;
        let p = regularized_pseudo_inverse(&a, alpha_rel).unwrap();
        // Filter max over s of s/(s²+α²) = 1/(2α) with α = alpha_rel·σmax.
        assert!(p.norm_max() <= 0.5 / (alpha_rel * 1.0) + 1e-9);
    }

    #[test]
    fn tikhonov_near_zero_alpha_matches_pinv() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]);
        let p1 = regularized_pseudo_inverse(&a, 1e-12).unwrap();
        let p2 = pseudo_inverse(&a, 1e-14).unwrap();
        assert!(p1.approx_eq(&p2, 1e-8));
    }
}
