//! Householder QR factorization and least-squares solves.
//!
//! `A = Q R` with `Q` orthogonal (`m x m`, stored implicitly as Householder
//! reflectors) and `R` upper-triangular.  Solving `min ||A x - b||₂` then
//! reduces to applying the reflectors to `b` and back-substituting through
//! `R`.  This is the workhorse behind both [`lstsq`] and the passive-set
//! solves inside [`crate::nnls`].

#![allow(clippy::needless_range_loop)] // factorization loops index the packed QR and the rhs together
use crate::{LinalgError, Matrix, Result};

/// A Householder QR factorization of an `m x n` matrix with `m >= n`.
#[derive(Debug, Clone)]
pub struct QrFactorization {
    /// Packed factorization: `R` in the upper triangle, reflector vectors
    /// below the diagonal (with implicit unit leading entry).
    qr: Matrix,
    /// Scalar `beta` of each reflector `H = I - beta v vᵀ`.
    betas: Vec<f64>,
}

impl QrFactorization {
    /// Factors `a`.  Requires `rows >= cols`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                context: "qr (requires rows >= cols)",
                expected: (n, n),
                found: (m, n),
            });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut norm = 0.0f64;
            for i in k..m {
                norm = norm.hypot(qr[(i, k)]);
            }
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] > 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = (v0, a[k+1..m, k]); normalize so v[0] = 1.
            for i in (k + 1)..m {
                let scaled = qr[(i, k)] / v0;
                qr[(i, k)] = scaled;
            }
            betas[k] = -v0 / alpha;
            qr[(k, k)] = alpha;
            // Apply H to the remaining columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= betas[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(QrFactorization { qr, betas })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// The upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// Reconstructs the thin `Q` factor (`m x n`) explicitly.
    pub fn thin_q(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::from_fn(m, n, |i, j| if i == j { 1.0 } else { 0.0 });
        // Apply reflectors in reverse order: Q = H_0 H_1 ... H_{n-1} I.
        for k in (0..n).rev() {
            if self.betas[k] == 0.0 {
                continue;
            }
            for j in 0..n {
                let mut s = q[(k, j)];
                for i in (k + 1)..m {
                    s += self.qr[(i, k)] * q[(i, j)];
                }
                s *= self.betas[k];
                q[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = self.qr[(i, k)];
                    q[(i, j)] -= s * vik;
                }
            }
        }
        q
    }

    /// Applies `Qᵀ` to a vector in place.
    pub fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        assert_eq!(b.len(), m, "apply_qt length mismatch");
        for k in 0..n {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * b[i];
            }
            s *= self.betas[k];
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solves `min ||A x - b||₂`; returns `x` (length `n`).
    ///
    /// Fails with [`LinalgError::Singular`] if `R` has a (numerically) zero
    /// diagonal entry.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                context: "qr solve",
                expected: (m, 1),
                found: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution through R.
        let tol = self.qr.norm_max() * crate::EPS * (m as f64);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            let d = self.qr[(i, i)];
            if d.abs() <= tol {
                return Err(LinalgError::Singular("qr solve"));
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Residual 2-norm `||A x - b||₂` for a given solution, computed from
    /// the transformed right-hand side (cheap, no re-multiplication).
    pub fn residual_norm(&self, b: &[f64]) -> f64 {
        let n = self.cols();
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        crate::norm2(&y[n..])
    }

    /// Cheap condition estimate: the ratio of the largest to the smallest
    /// absolute diagonal entry of `R`.  A lower bound on the true 2-norm
    /// condition number — already infinite for an exactly rank-deficient
    /// matrix, and large enough to flag the near-collinear design matrices
    /// a corrupted sweep produces.
    pub fn condition_estimate(&self) -> f64 {
        let n = self.cols();
        if n == 0 {
            return 1.0;
        }
        let mut max = 0.0f64;
        let mut min = f64::INFINITY;
        for i in 0..n {
            let d = self.qr[(i, i)].abs();
            max = max.max(d);
            min = min.min(d);
        }
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Column indices whose `R` diagonal is below `rel_tol` times the
    /// largest diagonal — the (numerically) dependent columns that make a
    /// plain `solve` fail with [`LinalgError::Singular`].
    pub fn small_diagonal_columns(&self, rel_tol: f64) -> Vec<usize> {
        let n = self.cols();
        let max = (0..n).map(|i| self.qr[(i, i)].abs()).fold(0.0f64, f64::max);
        let cutoff = max * rel_tol;
        (0..n).filter(|&i| self.qr[(i, i)].abs() <= cutoff).collect()
    }
}

/// One-shot least squares: solves `min ||A x - b||₂` via Householder QR.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    QrFactorization::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overdetermined() -> (Matrix, Vec<f64>) {
        // x = [1, 2] exactly: b = A x.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, -1.0]]);
        let b = a.matvec(&[1.0, 2.0]);
        (a, b)
    }

    #[test]
    fn exact_system_recovered() {
        let (a, b) = overdetermined();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn qr_reconstructs_a() {
        let (a, _) = overdetermined();
        let f = QrFactorization::new(&a).unwrap();
        let qr = f.thin_q().matmul(&f.r()).unwrap();
        assert!(qr.approx_eq(&a, 1e-12), "QR != A:\n{qr}\n{a}");
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let (a, _) = overdetermined();
        let q = QrFactorization::new(&a).unwrap().thin_q();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system; normal-equations solution known analytically.
        let a = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let b = [1.0, 2.0, 6.0];
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12, "mean minimizes ||x·1 - b||");
    }

    #[test]
    fn residual_norm_matches_direct_computation() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let b = [1.0, 2.0, 6.0];
        let f = QrFactorization::new(&a).unwrap();
        let x = f.solve(&b).unwrap();
        let r: Vec<f64> = a.matvec(&x).iter().zip(&b).map(|(ax, bi)| ax - bi).collect();
        assert!((f.residual_norm(&b) - crate::norm2(&r)).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = [1.0, 2.0, 3.0];
        assert!(matches!(lstsq(&a, &b), Err(LinalgError::Singular(_))));
    }

    #[test]
    fn underdetermined_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert!(QrFactorization::new(&a).is_err());
    }

    #[test]
    fn orthogonal_transform_preserves_norm() {
        let (a, b) = overdetermined();
        let f = QrFactorization::new(&a).unwrap();
        let mut y = b.clone();
        f.apply_qt(&mut y);
        assert!((crate::norm2(&y) - crate::norm2(&b)).abs() < 1e-12);
    }

    #[test]
    fn condition_estimate_flags_near_collinear_columns() {
        let (a, _) = overdetermined();
        let good = QrFactorization::new(&a).unwrap();
        assert!(good.condition_estimate() < 100.0);
        assert!(good.small_diagonal_columns(1e-8).is_empty());

        // Second column is the first plus a tiny perturbation.
        let bad = Matrix::from_rows(&[&[1.0, 1.0 + 1e-11], &[2.0, 2.0], &[3.0, 3.0 - 1e-11]]);
        let f = QrFactorization::new(&bad).unwrap();
        assert!(f.condition_estimate() > 1e8, "cond {}", f.condition_estimate());
        assert_eq!(f.small_diagonal_columns(1e-6), vec![1]);
    }

    #[test]
    fn exactly_singular_matrix_has_huge_condition() {
        // Floating-point rounding may leave a subnormal-sized diagonal
        // instead of an exact zero; either way the estimate is enormous.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let f = QrFactorization::new(&a).unwrap();
        assert!(f.condition_estimate() > 1e12, "cond {}", f.condition_estimate());
        assert_eq!(f.small_diagonal_columns(1e-10), vec![1]);
    }

    #[test]
    fn wide_rhs_rejected() {
        let (a, _) = overdetermined();
        let f = QrFactorization::new(&a).unwrap();
        assert!(f.solve(&[1.0, 2.0]).is_err());
    }
}
