//! Cholesky factorization `A = L Lᵀ` for symmetric positive-definite
//! matrices, with forward/back substitution solves.
//!
//! Used for the normal-equations path of ridge regression and as a fast
//! SPD solve inside the KIFMM operator precompute.

#![allow(clippy::needless_range_loop)] // triangular solves index several arrays by the same k
use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor of an SPD matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read.  Fails with
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m != n {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky (square required)",
                expected: (m, m),
                found: (m, n),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky solve",
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// log(det(A)) computed from the factor diagonal (stable for small
    /// determinants).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        // A = Bᵀ B + I is SPD for any B.
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut g = b.gram();
        for i in 0..2 {
            g[(i, i)] += 1.0;
        }
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd();
        let ch = Cholesky::new(&a).unwrap();
        let llt = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-12));
    }

    #[test]
    fn solve_round_trips() {
        let a = spd();
        let ch = Cholesky::new(&a).unwrap();
        let x_true = vec![2.0, -1.0];
        let b = a.matvec(&x_true);
        let x = ch.solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        assert!(matches!(Cholesky::new(&a), Err(LinalgError::NotPositiveDefinite { pivot: 1 })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn log_det_matches_known() {
        let a = Matrix::from_diag(&[2.0, 8.0]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - (16.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_wrong_length_rejected() {
        let ch = Cholesky::new(&spd()).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }
}
