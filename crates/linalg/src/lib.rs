//! Small dense linear-algebra kernels used by the DVFS-aware energy model
//! and the kernel-independent FMM.
//!
//! The paper's analysis pipeline fits the energy-roofline constants with a
//! non-negative least-squares (NNLS) solve, and the KIFMM translation
//! operators require regularized pseudo-inverses of kernel matrices.  This
//! crate provides exactly the numerics those two consumers need, built from
//! scratch:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual algebra.
//! * [`qr`] — Householder QR factorization and least-squares solves.
//! * [`cholesky`] — Cholesky factorization for symmetric positive-definite
//!   systems.
//! * [`svd`] — one-sided Jacobi singular value decomposition.
//! * [`nnls`] — the Lawson–Hanson active-set NNLS algorithm.
//! * [`pinv`] — Tikhonov-regularized pseudo-inverse built on the SVD.
//!
//! All routines are deterministic and allocation-conscious; factorizations
//! reuse workspace where it matters for the FMM's precompute step.

pub mod cholesky;
pub mod matrix;
pub mod nnls;
pub mod pinv;
pub mod qr;
pub mod svd;

pub use cholesky::Cholesky;
pub use matrix::Matrix;
pub use nnls::{nnls, nnls_ridge, NnlsOptions, NnlsSolution};
pub use pinv::{pseudo_inverse, regularized_pseudo_inverse};
pub use qr::{lstsq, QrFactorization};
pub use svd::{singular_values, Svd};

/// Machine-epsilon-scaled tolerance used as the default rank/convergence
/// threshold throughout the crate.
pub const EPS: f64 = f64::EPSILON;

/// Errors produced by the factorization and solve routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible.
    ShapeMismatch { context: &'static str, expected: (usize, usize), found: (usize, usize) },
    /// The matrix is singular (or numerically so) where a full-rank matrix
    /// is required.
    Singular(&'static str),
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite { pivot: usize },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence { routine: &'static str, iterations: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { context, expected, found } => write!(
                f,
                "{context}: shape mismatch, expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::Singular(ctx) => write!(f, "{ctx}: matrix is singular"),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NoConvergence { routine, iterations } => {
                write!(f, "{routine}: no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

impl From<LinalgError> for compat::error::PipelineError {
    fn from(e: LinalgError) -> Self {
        let routine = match &e {
            LinalgError::ShapeMismatch { context, .. } => *context,
            LinalgError::Singular(ctx) => *ctx,
            LinalgError::NotPositiveDefinite { .. } => "cholesky",
            LinalgError::NoConvergence { routine, .. } => *routine,
        };
        compat::error::PipelineError::Numeric {
            routine: routine.to_string(),
            detail: e.to_string(),
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice, computed with scaling to avoid overflow.
pub fn norm2(v: &[f64]) -> f64 {
    let max = v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    if max == 0.0 {
        return 0.0;
    }
    let sum: f64 = v.iter().map(|x| (x / max) * (x / max)).sum();
    max * sum.sqrt()
}

/// `y <- alpha * x + y`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn norm2_is_scale_safe() {
        let big = 1e300;
        let v = [big, big];
        assert!((norm2(&v) - big * std::f64::consts::SQRT_2).abs() / norm2(&v) < 1e-14);
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0; 8]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::NoConvergence { routine: "svd", iterations: 30 };
        assert!(e.to_string().contains("svd"));
        let e = LinalgError::ShapeMismatch { context: "matmul", expected: (2, 3), found: (4, 5) };
        assert!(e.to_string().contains("2x3"));
    }
}
