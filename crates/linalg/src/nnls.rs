//! Non-negative least squares: the Lawson–Hanson active-set algorithm.
//!
//! Solves `min ||A x - b||₂ subject to x >= 0`.  This is the estimator the
//! paper uses to fit the DVFS-aware energy-roofline constants
//! (Section II-C): energies per operation and leakage coefficients are
//! physically non-negative, so unconstrained least squares — which can and
//! does go negative on noisy power data — is not acceptable.
//!
//! Reference: C. L. Lawson and R. J. Hanson, *Solving Least Squares
//! Problems*, Chapter 23.

use crate::{lstsq, LinalgError, Matrix, Result};

/// Tuning knobs for [`nnls`].
#[derive(Debug, Clone)]
pub struct NnlsOptions {
    /// Maximum outer iterations; the default `10 * n` is far more than the
    /// model-fitting problems here ever need.
    pub max_iterations: usize,
    /// Entries of the dual vector `w = Aᵀ(b - Ax)` below this threshold are
    /// treated as non-positive (KKT tolerance).
    pub tolerance: f64,
}

impl Default for NnlsOptions {
    fn default() -> Self {
        NnlsOptions { max_iterations: 0, tolerance: 1e-10 }
    }
}

/// Output of [`nnls`].
#[derive(Debug, Clone)]
pub struct NnlsSolution {
    /// The non-negative minimizer.
    pub x: Vec<f64>,
    /// Residual 2-norm `||A x - b||₂`.
    pub residual_norm: f64,
    /// Indices of the passive (strictly positive) set on exit.
    pub passive_set: Vec<usize>,
    /// Outer iterations consumed.
    pub iterations: usize,
}

/// Solves `min ||A x - b||₂ s.t. x >= 0` by Lawson–Hanson.
///
/// ```
/// use dvfs_linalg::{nnls, Matrix, NnlsOptions};
///
/// // The unconstrained least-squares solution would need x[1] < 0;
/// // NNLS clamps it to the boundary and re-optimizes x[0].
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0], &[1.0, 1.0]]);
/// let b = [1.0, 4.0, 1.0];
/// let sol = nnls(&a, &b, &NnlsOptions::default()).unwrap();
/// assert_eq!(sol.x[1], 0.0);
/// assert!((sol.x[0] - 2.0).abs() < 1e-10);
/// ```
pub fn nnls(a: &Matrix, b: &[f64], options: &NnlsOptions) -> Result<NnlsSolution> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            context: "nnls",
            expected: (m, 1),
            found: (b.len(), 1),
        });
    }
    let max_iter = if options.max_iterations == 0 { 10 * n.max(3) } else { options.max_iterations };

    let mut x = vec![0.0; n];
    let mut passive = vec![false; n];
    let mut iterations = 0;

    // Residual r = b - A x  (x = 0 initially).
    let mut r: Vec<f64> = b.to_vec();

    loop {
        // Dual vector w = Aᵀ r; KKT: stop when w_j <= tol for all active j.
        let w = a.matvec_t(&r);
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if !passive[j] && w[j] > options.tolerance && best.is_none_or(|(_, bw)| w[j] > bw) {
                best = Some((j, w[j]));
            }
        }
        let Some((j_star, _)) = best else { break };
        if iterations >= max_iter {
            return Err(LinalgError::NoConvergence { routine: "nnls", iterations });
        }
        iterations += 1;
        passive[j_star] = true;

        // Inner loop: solve the unconstrained LSQ on the passive set and
        // walk back along the segment to stay feasible.
        loop {
            let p: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            let ap = a.select_columns(&p);
            let z = match lstsq(&ap, b) {
                Ok(z) => z,
                Err(LinalgError::Singular(_)) => {
                    // The passive set became rank-deficient (collinear
                    // columns); drop the newest variable and resume.
                    passive[j_star] = false;
                    break;
                }
                Err(e) => return Err(e),
            };
            if z.iter().all(|&v| v > 0.0) {
                // Fully feasible: accept.
                for (idx, &j) in p.iter().enumerate() {
                    x[j] = z[idx];
                }
                for j in 0..n {
                    if !passive[j] {
                        x[j] = 0.0;
                    }
                }
                break;
            }
            // Step length to the first variable that hits zero.
            let mut alpha = f64::INFINITY;
            for (idx, &j) in p.iter().enumerate() {
                if z[idx] <= 0.0 {
                    let denom = x[j] - z[idx];
                    if denom > 0.0 {
                        alpha = alpha.min(x[j] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                // Degenerate: everything already at zero; drop offender.
                for (idx, &j) in p.iter().enumerate() {
                    if z[idx] <= 0.0 {
                        passive[j] = false;
                    }
                }
                continue;
            }
            for (idx, &j) in p.iter().enumerate() {
                x[j] += alpha * (z[idx] - x[j]);
            }
            // Move variables that reached (numerical) zero to the active set.
            for &j in &p {
                if x[j] <= options.tolerance {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
        }

        // Refresh residual.
        let ax = a.matvec(&x);
        for i in 0..m {
            r[i] = b[i] - ax[i];
        }
    }

    let passive_set: Vec<usize> = (0..n).filter(|&j| x[j] > 0.0).collect();
    Ok(NnlsSolution { residual_norm: crate::norm2(&r), x, passive_set, iterations })
}

/// Ridge-regularized NNLS: solves `min ||A x - b||₂² + λ ||x||₂² s.t. x >= 0`
/// by augmenting the design matrix with `√λ · I` and the right-hand side
/// with zeros, then running plain Lawson–Hanson on the stacked system.
///
/// The augmentation makes every column linearly independent, so the solve
/// succeeds even when `A` is rank-deficient — this is the degradation
/// rung the fitting pipeline falls back to when a corrupted sweep leaves
/// the design matrix ill-conditioned.  `lambda` must be positive.
pub fn nnls_ridge(
    a: &Matrix,
    b: &[f64],
    lambda: f64,
    options: &NnlsOptions,
) -> Result<NnlsSolution> {
    assert!(lambda > 0.0, "ridge parameter must be positive, got {lambda}");
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            context: "nnls_ridge",
            expected: (m, 1),
            found: (b.len(), 1),
        });
    }
    let sqrt_lambda = lambda.sqrt();
    let mut data = Vec::with_capacity((m + n) * n);
    for i in 0..m {
        for j in 0..n {
            data.push(a[(i, j)]);
        }
    }
    for i in 0..n {
        for j in 0..n {
            data.push(if i == j { sqrt_lambda } else { 0.0 });
        }
    }
    let stacked = Matrix::from_vec(m + n, n, data);
    let mut rhs = b.to_vec();
    rhs.extend(std::iter::repeat(0.0).take(n));
    let mut sol = nnls(&stacked, &rhs, options)?;
    // Report the residual of the *original* system, not the stacked one.
    let r: Vec<f64> = a.matvec(&sol.x).iter().zip(b).map(|(ax, bi)| bi - ax).collect();
    sol.residual_norm = crate::norm2(&r);
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(a: &Matrix, b: &[f64]) -> NnlsSolution {
        nnls(a, b, &NnlsOptions::default()).unwrap()
    }

    #[test]
    fn interior_solution_matches_lstsq() {
        // Well-posed problem whose unconstrained solution is positive.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let b = a.matvec(&[2.0, 3.0]);
        let sol = solve(&a, &b);
        assert!((sol.x[0] - 2.0).abs() < 1e-10 && (sol.x[1] - 3.0).abs() < 1e-10);
        assert!(sol.residual_norm < 1e-10);
    }

    #[test]
    fn negative_unconstrained_solution_is_clamped() {
        // Unconstrained solution has x[1] < 0; NNLS must return x[1] = 0 and
        // the best non-negative x[0].
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0], &[1.0, 1.0]]);
        let b = [1.0, 4.0, 1.0];
        let sol = solve(&a, &b);
        assert!(sol.x.iter().all(|&v| v >= 0.0));
        assert_eq!(sol.x[1], 0.0);
        assert!((sol.x[0] - 2.0).abs() < 1e-10, "best 1-var fit is mean = 2: {:?}", sol.x);
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let sol = solve(&a, &[0.0, 0.0]);
        assert_eq!(sol.x, vec![0.0, 0.0]);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn kkt_conditions_hold() {
        let a = Matrix::from_rows(&[
            &[0.5, 1.2, 0.1],
            &[1.5, 0.2, 0.3],
            &[0.7, 0.9, 1.1],
            &[1.1, 0.4, 0.8],
        ]);
        let b = [1.0, 2.0, 0.1, 3.0];
        let sol = solve(&a, &b);
        let r: Vec<f64> = a.matvec(&sol.x).iter().zip(&b).map(|(ax, bi)| bi - ax).collect();
        let w = a.matvec_t(&r);
        for j in 0..3 {
            if sol.x[j] > 0.0 {
                assert!(w[j].abs() < 1e-8, "gradient vanishes on passive set: w[{j}] = {}", w[j]);
            } else {
                assert!(w[j] <= 1e-8, "dual feasibility on active set: w[{j}] = {}", w[j]);
            }
        }
    }

    #[test]
    fn beats_or_ties_any_nonnegative_grid_candidate() {
        // Brute-force verification of optimality on a coarse grid.
        let a = Matrix::from_rows(&[&[1.0, 0.3], &[0.2, 1.0], &[0.5, 0.5]]);
        let b = [0.3, -0.4, 0.1];
        let sol = solve(&a, &b);
        let obj = |x: &[f64]| {
            let r: Vec<f64> = a.matvec(x).iter().zip(&b).map(|(ax, bi)| ax - bi).collect();
            crate::norm2(&r)
        };
        let best = sol.residual_norm;
        for i in 0..=40 {
            for j in 0..=40 {
                let cand = [i as f64 * 0.05, j as f64 * 0.05];
                assert!(obj(&cand) >= best - 1e-9);
            }
        }
    }

    #[test]
    fn collinear_columns_do_not_hang() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let b = [1.0, 1.0, 1.0];
        let sol = solve(&a, &b);
        // x may put weight on either column, but the fit must be exact.
        assert!(sol.residual_norm < 1e-10);
        assert!(sol.x.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn rhs_length_mismatch_rejected() {
        let a = Matrix::zeros(3, 2);
        assert!(nnls(&a, &[1.0], &NnlsOptions::default()).is_err());
    }

    #[test]
    fn ridge_solves_rank_deficient_system() {
        // Two identical columns: plain QR-based lstsq inside NNLS drops
        // one, but the ridge-augmented system is full rank and splits the
        // weight; the fitted values still reproduce b.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = [2.0, 4.0, 6.0];
        let sol = nnls_ridge(&a, &b, 1e-8, &NnlsOptions::default()).unwrap();
        assert!(sol.x.iter().all(|&v| v >= 0.0));
        assert!(sol.residual_norm < 1e-3, "residual {}", sol.residual_norm);
        assert!((sol.x[0] + sol.x[1] - 2.0).abs() < 1e-3, "{:?}", sol.x);
    }

    #[test]
    fn ridge_residual_is_of_the_original_system() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let b = [1.0, 2.0, 6.0];
        let sol = nnls_ridge(&a, &b, 1e-10, &NnlsOptions::default()).unwrap();
        let r: Vec<f64> = a.matvec(&sol.x).iter().zip(&b).map(|(ax, bi)| bi - ax).collect();
        assert!((sol.residual_norm - crate::norm2(&r)).abs() < 1e-12);
    }

    #[test]
    fn small_ridge_barely_perturbs_a_well_posed_fit() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let b = a.matvec(&[2.0, 3.0]);
        let plain = solve(&a, &b);
        let ridged = nnls_ridge(&a, &b, 1e-12, &NnlsOptions::default()).unwrap();
        for k in 0..2 {
            assert!((plain.x[k] - ridged.x[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn recovers_energy_model_like_fit() {
        // Miniature version of the paper's fitting problem: 3 features
        // (flop count, mop count, time) with known non-negative costs.
        let truth = [29.0e-12, 377.0e-12, 6.8];
        let rows = 40;
        let mut data = Vec::new();
        let mut b = Vec::new();
        for i in 0..rows {
            let w = 1e9 + (i as f64) * 3.7e8;
            let q = 5e7 + ((i * 13 % 17) as f64) * 9.1e6;
            let t = 0.01 + (i as f64) * 1e-3;
            data.extend_from_slice(&[w, q, t]);
            b.push(truth[0] * w + truth[1] * q + truth[2] * t);
        }
        let a = Matrix::from_vec(rows, 3, data);
        let sol = solve(&a, &b);
        for k in 0..3 {
            let rel = (sol.x[k] - truth[k]).abs() / truth[k];
            assert!(rel < 1e-8, "constant {k}: got {}, want {}", sol.x[k], truth[k]);
        }
    }
}
