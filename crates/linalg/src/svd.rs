//! One-sided Jacobi singular value decomposition.
//!
//! Computes the thin SVD `A = U Σ Vᵀ` of an `m x n` matrix (`m >= n`; wide
//! matrices are handled by transposition in [`crate::pinv`]).  One-sided
//! Jacobi orthogonalizes the columns of a working copy of `A` by repeated
//! plane rotations; it is slow for large matrices but extremely accurate for
//! the small kernel matrices the KIFMM needs (high relative accuracy even
//! for tiny singular values, which matters because equivalent-density
//! systems are severely ill-conditioned).

use crate::{LinalgError, Matrix, Result};

/// Thin singular value decomposition.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m x n`.
    pub u: Matrix,
    /// Singular values, descending, length `n`.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n x n` (the matrix `V`, not `Vᵀ`).
    pub v: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a` (`rows >= cols` required).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                context: "svd (requires rows >= cols; transpose first)",
                expected: (n, n),
                found: (m, n),
            });
        }
        let mut u = a.clone();
        let mut v = Matrix::identity(n);
        let max_sweeps = 60;
        let tol = 1e-14;
        let mut converged = false;
        for _sweep in 0..max_sweeps {
            let mut off = 0.0f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries over columns p, q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        app += up * up;
                        aqq += uq * uq;
                        apq += up * uq;
                    }
                    if apq.abs() <= tol * (app * aqq).sqrt() {
                        continue;
                    }
                    off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));
                    // Jacobi rotation that annihilates the (p,q) Gram entry.
                    let zeta = (aqq - app) / (2.0 * apq);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        u[(i, p)] = c * up - s * uq;
                        u[(i, q)] = s * up + c * uq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if off <= tol {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(LinalgError::NoConvergence { routine: "svd", iterations: max_sweeps });
        }
        // Column norms are the singular values; normalize U's columns.
        let mut sigma: Vec<f64> = (0..n).map(|j| crate::norm2(&u.col(j))).collect();
        for j in 0..n {
            if sigma[j] > 0.0 {
                for i in 0..m {
                    u[(i, j)] /= sigma[j];
                }
            }
        }
        // Sort descending, permuting U and V consistently.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| sigma[b].partial_cmp(&sigma[a]).unwrap());
        let u_sorted = u.select_columns(&order);
        let v_sorted = v.select_columns(&order);
        let sig_sorted: Vec<f64> = order.iter().map(|&j| sigma[j]).collect();
        sigma = sig_sorted;
        Ok(Svd { u: u_sorted, sigma, v: v_sorted })
    }

    /// Numerical rank at relative threshold `rtol` (relative to σ₁).
    pub fn rank(&self, rtol: f64) -> usize {
        let s0 = self.sigma.first().copied().unwrap_or(0.0);
        self.sigma.iter().filter(|&&s| s > rtol * s0).count()
    }

    /// 2-norm condition number σ₁/σₙ (∞ if rank-deficient).
    pub fn condition_number(&self) -> f64 {
        match (self.sigma.first(), self.sigma.last()) {
            (Some(&s1), Some(&sn)) if sn > 0.0 => s1 / sn,
            _ => f64::INFINITY,
        }
    }

    /// Reconstructs `A = U Σ Vᵀ` (for testing / diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let mut usig = self.u.clone();
        for j in 0..self.sigma.len() {
            for i in 0..usig.rows() {
                usig[(i, j)] *= self.sigma[j];
            }
        }
        usig.matmul(&self.v.transpose()).expect("shape ok")
    }
}

/// Convenience: just the singular values of `a`, descending.
pub fn singular_values(a: &Matrix) -> Result<Vec<f64>> {
    let (m, n) = a.shape();
    let work = if m >= n { a.clone() } else { a.transpose() };
    Ok(Svd::new(&work)?.sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_svd() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.sigma[0] - 3.0).abs() < 1e-12);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-12);
        assert!((svd.sigma[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, -3.0], &[1.0, 1.0]]);
        let svd = Svd::new(&a).unwrap();
        assert!(svd.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn u_and_v_are_orthonormal() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let svd = Svd::new(&a).unwrap();
        let utu = svd.u.transpose().matmul(&svd.u).unwrap();
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(2), 1e-12));
        assert!(vtv.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn rank_deficient_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.condition_number() > 1e10);
    }

    #[test]
    fn singular_values_of_wide_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 4.0, 0.0]]);
        let s = singular_values(&a).unwrap();
        assert!((s[0] - 4.0).abs() < 1e-12 && (s[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_norm_equals_sigma_norm() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0], &[3.0, 0.0]]);
        let svd = Svd::new(&a).unwrap();
        let sig_norm = crate::norm2(&svd.sigma);
        assert!((a.norm_fro() - sig_norm).abs() < 1e-12);
    }

    #[test]
    fn wide_input_rejected() {
        assert!(Svd::new(&Matrix::zeros(2, 3)).is_err());
    }
}
