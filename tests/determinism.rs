//! Bitwise-determinism guarantees of the reproduction pipeline.
//!
//! Every stage of the pipeline is seeded, and the in-tree thread pool
//! concatenates chunk results in submission order, so the *entire*
//! pipeline must be a pure function of its seeds: identical bits across
//! repeated runs and across worker-thread counts.  These tests pin that
//! contract — a regression here silently invalidates every golden value
//! and every published number.

use compat::rng::StdRng;
use dvfs_energy_model::fit_model;
use dvfs_microbench::{run_sweep, MicrobenchKind, SweepConfig};
use kifmm::evaluator::{FmmPlan, M2lMethod};
use kifmm::{profile_plan, CostModel, FmmEvaluator};

fn small_sweep(threads: usize) -> SweepConfig {
    SweepConfig {
        kinds: vec![MicrobenchKind::SinglePrecision, MicrobenchKind::L2],
        trials: 1,
        seed: 0xD5EED,
        threads,
        faults: None,
        ..SweepConfig::default()
    }
}

#[test]
fn sweep_samples_are_bitwise_identical_across_runs() {
    let cfg = small_sweep(0);
    let a = run_sweep(&cfg);
    let b = run_sweep(&cfg);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.time_s.to_bits(), y.time_s.to_bits());
        assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits());
        assert_eq!(x.setting, y.setting);
        assert_eq!(x.kind, y.kind);
    }
}

#[test]
fn sweep_samples_are_bitwise_identical_across_thread_counts() {
    // Workers own whole settings and results are concatenated in chunk
    // order, so even the *order* must match between thread layouts.
    let a = run_sweep(&small_sweep(1));
    for threads in [2, 3, 8] {
        let b = run_sweep(&small_sweep(threads));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.setting, y.setting, "order changed at {threads} threads");
            assert_eq!(x.time_s.to_bits(), y.time_s.to_bits());
            assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits());
        }
    }
}

#[test]
fn nnls_fit_is_bitwise_reproducible() {
    let dataset = run_sweep(&small_sweep(0));
    let a = fit_model(dataset.training());
    let b = fit_model(dataset.training());
    for i in 0..a.model.c0_pj_per_v2.len() {
        assert_eq!(a.model.c0_pj_per_v2[i].to_bits(), b.model.c0_pj_per_v2[i].to_bits());
    }
    assert_eq!(a.model.c1_proc_w_per_v.to_bits(), b.model.c1_proc_w_per_v.to_bits());
    assert_eq!(a.model.c1_mem_w_per_v.to_bits(), b.model.c1_mem_w_per_v.to_bits());
    assert_eq!(a.model.p_misc_w.to_bits(), b.model.p_misc_w.to_bits());
    assert_eq!(a.residual_norm_j.to_bits(), b.residual_norm_j.to_bits());

    // A regenerated (identical-seed) dataset must fit to the same bits.
    let again = run_sweep(&small_sweep(0));
    let c = fit_model(again.training());
    assert_eq!(a.model.p_misc_w.to_bits(), c.model.p_misc_w.to_bits());
    assert_eq!(a.model.c0_pj_per_v2[0].to_bits(), c.model.c0_pj_per_v2[0].to_bits());
}

fn seeded_cloud(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<[f64; 3]> = (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let den: Vec<f64> = (0..n).map(|_| 2.0 * rng.random::<f64>() - 1.0).collect();
    (pts, den)
}

#[test]
fn fmm_phase_counters_are_identical_across_runs() {
    let (pts, den) = seeded_cloud(3000, 42);
    let plan = FmmPlan::new(&pts, &den, 32, 4, M2lMethod::Fft);
    let a = profile_plan(&plan, &CostModel::default());
    let b = profile_plan(&plan, &CostModel::default());
    assert_eq!(a.phases.len(), b.phases.len());
    for (pa, pb) in a.phases.iter().zip(&b.phases) {
        assert_eq!(pa.phase, pb.phase);
        assert_eq!(pa.counters.snapshot(), pb.counters.snapshot(), "{:?}", pa.phase);
        assert_eq!(pa.launches, pb.launches);
    }
}

#[test]
fn fmm_evaluation_and_counters_are_identical_across_thread_counts() {
    // This test owns the global thread-count override for its whole
    // body; it is the only test in this binary that touches it.
    //
    // Three contracts are pinned per thread count: bitwise identity
    // with the single-thread baseline, bitwise repeatability of back-
    // to-back evaluations on the *same* evaluator (the warm persistent
    // pool, with all arenas re-derived from the plan), and op-counter
    // invariance for a plan *rebuilt* at that thread count — the
    // baseline plan goes through the sequential tree-build path
    // (threads = 1) while the rebuilt plans use the parallel builder,
    // so this also pins sequential-vs-parallel construction.
    let (pts, den) = seeded_cloud(2500, 7);

    compat::par::set_thread_count(Some(1));
    let plan = FmmPlan::new(&pts, &den, 32, 4, M2lMethod::Fft);
    let serial_eval = FmmEvaluator::new();
    let base_potentials = serial_eval.evaluate(&plan);
    let serial_again = serial_eval.evaluate(&plan);
    for (x, y) in serial_again.iter().zip(&base_potentials) {
        assert_eq!(x.to_bits(), y.to_bits(), "serial warm-pool repeat differs");
    }
    let base_profile = profile_plan(&plan, &CostModel::default());

    for threads in [2, 4, 8] {
        compat::par::set_thread_count(Some(threads));
        let eval = FmmEvaluator::new();
        let potentials = eval.evaluate(&plan);
        assert_eq!(potentials.len(), base_potentials.len());
        for (i, (x, y)) in potentials.iter().zip(&base_potentials).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "potential {i} differs at {threads} threads");
        }
        // Repeated evaluation on the now-warm pool: same bits again.
        let again = eval.evaluate(&plan);
        for (i, (x, y)) in again.iter().zip(&potentials).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "warm-pool repeat of potential {i} differs at {threads} threads"
            );
        }
        let profile = profile_plan(&plan, &CostModel::default());
        for (pa, pb) in profile.phases.iter().zip(&base_profile.phases) {
            assert_eq!(pa.counters.snapshot(), pb.counters.snapshot(), "{:?}", pa.phase);
        }
        // A plan rebuilt at this thread count exercises the parallel
        // tree and list builders; its op counts (and potentials) must
        // match the sequentially built baseline exactly.
        let rebuilt = FmmPlan::new(&pts, &den, 32, 4, M2lMethod::Fft);
        let rebuilt_profile = profile_plan(&rebuilt, &CostModel::default());
        for (pa, pb) in rebuilt_profile.phases.iter().zip(&base_profile.phases) {
            assert_eq!(
                pa.counters.snapshot(),
                pb.counters.snapshot(),
                "rebuilt-plan counters differ at {threads} threads in {:?}",
                pa.phase
            );
        }
        let rebuilt_potentials = eval.evaluate(&rebuilt);
        for (i, (x, y)) in rebuilt_potentials.iter().zip(&base_potentials).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "rebuilt-plan potential {i} differs at {threads} threads"
            );
        }
    }
    compat::par::set_thread_count(None);
}
