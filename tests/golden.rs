//! Golden-value regression tests for the paper artifacts.
//!
//! The pipeline is bitwise deterministic (see `determinism.rs`), so the
//! numbers behind Table I (fit constants), Table II (autotune picks) and
//! Table IV / Figure 5 (predicted-vs-measured error) can be locked to a
//! checked-in snapshot: `tests/golden/values.json`.  Any change to the
//! PRNG stream, the sweep, the NNLS solver, the autotuner or the FMM
//! profiler shows up here as a diff against the snapshot instead of a
//! silent drift of every published number.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden
//! ```
//!
//! then review the diff of `tests/golden/values.json` like any other
//! code change.
//!
//! Floats are compared with a relative tolerance of 1e-9 — far below
//! any physically meaningful difference, far above accumulated rounding
//! jitter from e.g. a compiler upgrade re-associating a reduction.
//! Counts (cases, mispredictions) must match exactly.

use std::path::PathBuf;
use std::sync::OnceLock;

use compat::json::{Json, ToJson};
use dvfs_bench::pipeline::{fig5_validation, fitted_model, fmm_profiles, table2_outcomes};
use dvfs_energy_model::{AutotuneOutcome, EnergyModel, ErrorStats};

/// Master seed of the golden pipeline run (sweep, autotune, FMM cases).
const GOLDEN_SEED: u64 = 0x601D;
/// FMM inputs are scaled to 1/16 of the paper's N so the suite stays
/// minutes, not hours; the golden values are for *this* scale.
const SCALE_SHIFT: u32 = 4;
const REL_TOL: f64 = 1e-9;

struct GoldenRun {
    model: EnergyModel,
    fit_residual_j: f64,
    train_rms_rel: f64,
    table2: Vec<AutotuneOutcome>,
    fig5: ErrorStats,
}

fn golden_run() -> &'static GoldenRun {
    static RUN: OnceLock<GoldenRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let dataset = dvfs_microbench::run_sweep(&dvfs_microbench::SweepConfig {
            seed: GOLDEN_SEED,
            faults: None,
            ..dvfs_microbench::SweepConfig::default()
        });
        let report = dvfs_energy_model::fit_model(dataset.training());
        let table2 = table2_outcomes(&report.model, GOLDEN_SEED ^ 0x2);
        let profiles = fmm_profiles(SCALE_SHIFT, GOLDEN_SEED ^ 0x5);
        let (_cases, fig5) = fig5_validation(&report.model, &profiles, GOLDEN_SEED ^ 0xF);
        GoldenRun {
            model: report.model,
            fit_residual_j: report.residual_norm_j,
            train_rms_rel: report.train_rms_rel,
            table2,
            fig5,
        }
    })
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/values.json")
}

fn encode(run: &GoldenRun) -> Json {
    Json::obj([
        ("seed", Json::Num(GOLDEN_SEED as f64)),
        ("scale_shift", Json::Num(SCALE_SHIFT as f64)),
        (
            "table1_fit",
            Json::obj([
                ("c0_pj_per_v2", run.model.c0_pj_per_v2.to_vec().to_json()),
                ("c1_proc_w_per_v", Json::Num(run.model.c1_proc_w_per_v)),
                ("c1_mem_w_per_v", Json::Num(run.model.c1_mem_w_per_v)),
                ("p_misc_w", Json::Num(run.model.p_misc_w)),
                ("residual_norm_j", Json::Num(run.fit_residual_j)),
                ("train_rms_rel", Json::Num(run.train_rms_rel)),
            ]),
        ),
        (
            "table2",
            Json::Arr(
                run.table2
                    .iter()
                    .map(|o| {
                        Json::obj([
                            ("kind", Json::Str(o.kind.name().to_string())),
                            ("cases", Json::Num(o.cases as f64)),
                            ("model_mispredictions", Json::Num(o.model.mispredictions as f64)),
                            ("model_mean_lost_pct", Json::Num(o.model.mean_lost_pct())),
                            ("oracle_mispredictions", Json::Num(o.oracle.mispredictions as f64)),
                            ("oracle_mean_lost_pct", Json::Num(o.oracle.mean_lost_pct())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fig5_errors",
            Json::obj([
                ("count", Json::Num(run.fig5.count as f64)),
                ("mean_pct", Json::Num(run.fig5.mean_pct)),
                ("std_pct", Json::Num(run.fig5.std_pct)),
                ("min_pct", Json::Num(run.fig5.min_pct)),
                ("max_pct", Json::Num(run.fig5.max_pct)),
            ]),
        ),
    ])
}

/// Loads the snapshot, regenerating it when `GOLDEN_REGEN` is set.
fn snapshot() -> Json {
    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let text = encode(golden_run()).to_text();
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, text + "\n").expect("write golden snapshot");
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {path:?} ({e}); run `GOLDEN_REGEN=1 cargo test --test golden`"
        )
    });
    Json::parse(&text).expect("golden snapshot parses")
}

fn assert_close(what: &str, got: f64, want: f64) {
    let tol = REL_TOL * want.abs().max(1e-12);
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got:?}, golden {want:?} (|Δ| = {:e})",
        (got - want).abs()
    );
}

fn field_f64(v: &Json, key: &str) -> f64 {
    v.field(key).unwrap().as_f64().unwrap()
}

#[test]
fn golden_seed_and_scale_match() {
    let snap = snapshot();
    assert_eq!(field_f64(&snap, "seed") as u64, GOLDEN_SEED, "snapshot from different seed");
    assert_eq!(field_f64(&snap, "scale_shift") as u32, SCALE_SHIFT);
}

#[test]
fn table1_fit_constants_match_golden() {
    let snap = snapshot();
    let run = golden_run();
    let fit = snap.field("table1_fit").unwrap();
    let c0 = fit.field("c0_pj_per_v2").unwrap().as_array().unwrap();
    assert_eq!(c0.len(), run.model.c0_pj_per_v2.len());
    for (i, want) in c0.iter().enumerate() {
        assert_close(&format!("c0[{i}]"), run.model.c0_pj_per_v2[i], want.as_f64().unwrap());
    }
    assert_close("c1_proc_w_per_v", run.model.c1_proc_w_per_v, field_f64(fit, "c1_proc_w_per_v"));
    assert_close("c1_mem_w_per_v", run.model.c1_mem_w_per_v, field_f64(fit, "c1_mem_w_per_v"));
    assert_close("p_misc_w", run.model.p_misc_w, field_f64(fit, "p_misc_w"));
    assert_close("residual_norm_j", run.fit_residual_j, field_f64(fit, "residual_norm_j"));
    assert_close("train_rms_rel", run.train_rms_rel, field_f64(fit, "train_rms_rel"));
}

#[test]
fn table2_autotune_picks_match_golden() {
    let snap = snapshot();
    let run = golden_run();
    let rows = snap.field("table2").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), run.table2.len(), "family count changed");
    for (row, outcome) in rows.iter().zip(&run.table2) {
        let kind = row.field("kind").unwrap().as_str().unwrap();
        assert_eq!(kind, outcome.kind.name());
        assert_eq!(field_f64(row, "cases") as usize, outcome.cases, "{kind}: cases");
        assert_eq!(
            field_f64(row, "model_mispredictions") as usize,
            outcome.model.mispredictions,
            "{kind}: model mispredictions"
        );
        assert_eq!(
            field_f64(row, "oracle_mispredictions") as usize,
            outcome.oracle.mispredictions,
            "{kind}: oracle mispredictions"
        );
        assert_close(
            &format!("{kind}: model mean lost"),
            outcome.model.mean_lost_pct(),
            field_f64(row, "model_mean_lost_pct"),
        );
        assert_close(
            &format!("{kind}: oracle mean lost"),
            outcome.oracle.mean_lost_pct(),
            field_f64(row, "oracle_mean_lost_pct"),
        );
    }
}

#[test]
fn fig5_prediction_errors_match_golden() {
    let snap = snapshot();
    let run = golden_run();
    let f = snap.field("fig5_errors").unwrap();
    assert_eq!(field_f64(f, "count") as usize, run.fig5.count);
    assert_close("fig5 mean_pct", run.fig5.mean_pct, field_f64(f, "mean_pct"));
    assert_close("fig5 std_pct", run.fig5.std_pct, field_f64(f, "std_pct"));
    assert_close("fig5 min_pct", run.fig5.min_pct, field_f64(f, "min_pct"));
    assert_close("fig5 max_pct", run.fig5.max_pct, field_f64(f, "max_pct"));
}

#[test]
fn fig5_errors_stay_in_paper_band() {
    // Belt and braces beyond the exact snapshot: the paper reports mean
    // 6.17%, max 14.89% — the reproduction must stay the same order.
    let run = golden_run();
    assert!(run.fig5.mean_pct < 12.0, "mean error {:.2}%", run.fig5.mean_pct);
    assert!(run.fig5.max_pct < 30.0, "max error {:.2}%", run.fig5.max_pct);
}
