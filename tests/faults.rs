//! Faulted end-to-end acceptance tests: with the documented default
//! fault rates, the *entire* pipeline — sweep, NNLS fit, cross-
//! validation, autotuning, FMM validation — must complete without a
//! panic, every injected fault must be either retried away or reported
//! in the diagnostics, and the cross-validated accuracy must stay
//! within 2x of the clean run at the same master seed.

use dvfs_bench::pipeline::{fig5_validation, fmm_profiles, try_fitted_model};
use dvfs_energy_model::crossval::{try_holdout_validation, try_leave_one_setting_out};
use dvfs_energy_model::{autotune_microbenchmarks, FitOptions};
use dvfs_microbench::{MicrobenchKind, SweepConfig};
use tk1_sim::faults::{FaultConfig, FaultRates};

const SEED: u64 = 0xFA57;

fn config(faults: Option<FaultConfig>) -> SweepConfig {
    SweepConfig { seed: SEED, faults, ..SweepConfig::default() }
}

#[test]
fn faulted_pipeline_completes_and_stays_within_2x_of_clean_accuracy() {
    // Clean reference at the same master seed.
    let clean = try_fitted_model(&config(None)).expect("clean pipeline");
    let clean_cv =
        try_holdout_validation(&clean.dataset, &FitOptions::default()).expect("clean holdout");
    assert_eq!(clean.sweep_stats.total_retries(), 0, "fault-free runs must never retry");

    // The same campaign under the documented default fault rates.
    let faulted = try_fitted_model(&config(Some(FaultConfig::default_campaign())))
        .expect("default fault rates must be survivable end to end");
    assert_eq!(faulted.dataset.len(), clean.dataset.len(), "retries must not drop samples");

    // Every injected fault is accounted for: either a gate tripped and
    // the measurement was retried, or the suspect sample was kept and
    // flagged, or the fit reported a degradation.
    let accounted = faulted.sweep_stats.total_retries() > 0
        || faulted.sweep_stats.suspect_kept > 0
        || faulted.fit_diagnostics.degraded();
    assert!(accounted, "faults left no trace in stats or diagnostics: {:?}", faulted.sweep_stats);
    assert!(faulted.sweep_stats.total_retries() > 0, "default rates must trip some gate");

    // Acceptance bound: cross-validated mean error within 2x of the
    // clean run's error on the same seed.
    let robust = FitOptions { reject_row_outliers: true, ..FitOptions::default() };
    let faulted_cv = try_holdout_validation(&faulted.dataset, &robust).expect("faulted holdout");
    assert!(
        faulted_cv.stats.mean_pct <= clean_cv.stats.mean_pct * 2.0,
        "faulted holdout mean {:.2}% vs clean {:.2}%",
        faulted_cv.stats.mean_pct,
        clean_cv.stats.mean_pct
    );

    let clean_kfold =
        try_leave_one_setting_out(&clean.dataset, &FitOptions::default()).expect("clean k-fold");
    let faulted_kfold =
        try_leave_one_setting_out(&faulted.dataset, &robust).expect("faulted k-fold");
    assert!(
        faulted_kfold.stats.mean_pct <= clean_kfold.stats.mean_pct * 2.0,
        "faulted k-fold mean {:.2}% vs clean {:.2}%",
        faulted_kfold.stats.mean_pct,
        clean_kfold.stats.mean_pct
    );

    // The downstream consumers run on the faulted model without panics
    // and produce sane numbers.
    let outcomes = autotune_microbenchmarks(&faulted.model, &[MicrobenchKind::L2], SEED);
    assert_eq!(outcomes[0].cases, 9);
    let profiles = fmm_profiles(5, SEED);
    let (cases, stats) = fig5_validation(&faulted.model, &profiles, SEED);
    assert_eq!(cases.len(), 64);
    assert!(stats.mean_pct.is_finite());
    assert!(stats.mean_pct < 25.0, "faulted-model FMM error {:.2}%", stats.mean_pct);
}

#[test]
fn unsurvivable_fault_rates_error_instead_of_panicking() {
    let rates = FaultRates { latch_fail: 1.0, latch_neighbor: 0.0, ..FaultRates::off() };
    let cfg = config(Some(FaultConfig { seed: 1, rates }));
    let err = try_fitted_model(&cfg).expect_err("a permanently stuck latch is not survivable");
    let msg = format!("{err}");
    assert!(
        msg.contains("applied") || msg.contains("retry") || msg.contains("attempts"),
        "error should describe the exhausted retries: {msg}"
    );
}
