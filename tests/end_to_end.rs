//! Cross-crate integration: the paper's full methodology, end to end.
//!
//! These tests run the same pipeline as the `repro` harness at reduced
//! scale: sweep → fit → validate → profile the FMM → predict its energy
//! → check the Section IV observations.

use fmm_energy::prelude::*;

/// Fit once for the whole file (the sweep is the expensive step).
fn fitted() -> (EnergyModel, Dataset) {
    let dataset = run_sweep(&SweepConfig { seed: 2016, faults: None, ..SweepConfig::default() });
    let model = fit_model(dataset.training()).model;
    (model, dataset)
}

#[test]
fn sweep_fit_validate_cycle_matches_paper_error_band() {
    let (_, dataset) = fitted();
    assert_eq!(dataset.len(), 16 * 103, "16 settings x 103 intensity points");

    let holdout = holdout_validation(&dataset);
    assert!(
        holdout.stats.mean_pct > 0.3 && holdout.stats.mean_pct < 8.0,
        "holdout mean {:.2}% should be a few percent (paper: 2.87%)",
        holdout.stats.mean_pct
    );

    let kfold = leave_one_setting_out(&dataset);
    assert!(
        kfold.stats.mean_pct < 10.0,
        "16-fold mean {:.2}% (paper: 6.56%)",
        kfold.stats.mean_pct
    );
    assert!(kfold.stats.max_pct < 35.0, "worst case stays bounded");
}

#[test]
fn fitted_constants_recover_table1_scale() {
    let (model, _) = fitted();
    let (sp, dp, int, sm, l2, dram, pi0) = model.table1_row(Setting::max_performance());
    // Paper's Table I row 1: 29.0 / 139.1 / 60.0 / 35.4 / 90.2 / 377.0 / 6.8.
    for (got, want, label) in [
        (sp, 29.0, "SP"),
        (int, 60.0, "Int"),
        (sm, 35.4, "SM"),
        (l2, 90.2, "L2"),
        (dram, 377.0, "DRAM"),
        (pi0, 6.8, "pi0"),
    ] {
        let rel = (got - want).abs() / want;
        assert!(rel < 0.20, "{label}: {got:.1} vs paper {want} ({:.1}% off)", rel * 100.0);
    }
    // ε_DP is the hardest coefficient to identify on this platform: the
    // TK1's 1/24-rate double precision makes the DP microbenchmarks
    // constant-power-dominated (~85% of their energy is π0·T), so meter
    // calibration error is amplified roughly eightfold in the DP column.
    // The same conditioning problem affects the physical experiment.
    let rel = (dp - 139.1).abs() / 139.1;
    assert!(rel < 0.45, "DP: {dp:.1} vs paper 139.1 ({:.1}% off)", rel * 100.0);
}

#[test]
fn fmm_energy_prediction_matches_measurement() {
    let (model, _) = fitted();
    // Profile a scaled-down F7 (N = 16384, Q = 128).
    use compat::rng::StdRng;
    let n = 16_384;
    let mut rng = StdRng::seed_from_u64(8);
    let pts: Vec<[f64; 3]> = (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let den: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    let plan = FmmPlan::new(&pts, &den, 128, 4, M2lMethod::Fft);
    let profile = profile_plan(&plan, &CostModel::default());

    let mut device = Device::new(3);
    let mut meter = PowerMon::new(5);
    for (core, mem) in [(852.0, 924.0), (612.0, 528.0), (180.0, 924.0)] {
        let setting = Setting::from_frequencies(core, mem).expect("valid setting");
        device.set_operating_point(setting);
        let mut time_s = 0.0;
        let mut measured = 0.0;
        for k in profile.kernels() {
            let m = meter.measure(&mut device, &k);
            time_s += m.execution.duration_s;
            measured += m.measured_energy_j;
        }
        let predicted = model.predict_energy_j(&profile.total_ops(), setting, time_s);
        let err = (predicted - measured).abs() / measured;
        assert!(
            err < 0.18,
            "{}: predicted {predicted:.2} J vs measured {measured:.2} J ({:.1}%)",
            setting.label(),
            err * 100.0
        );
    }
}

#[test]
fn fmm_constant_power_dominates_and_microbench_does_not() {
    let (model, _) = fitted();
    use compat::rng::StdRng;
    let n = 8192;
    let mut rng = StdRng::seed_from_u64(13);
    let pts: Vec<[f64; 3]> = (0..n).map(|_| [rng.random(), rng.random(), rng.random()]).collect();
    let den = vec![1.0; n];
    let plan = FmmPlan::new(&pts, &den, 64, 4, M2lMethod::Fft);
    let profile = profile_plan(&plan, &CostModel::default());
    let setting = Setting::max_performance();
    let mut device = Device::new(17);
    device.set_operating_point(setting);
    let fmm_time: f64 = profile.kernels().iter().map(|k| device.execute(k).duration_s).sum();
    let fmm_share =
        BreakdownReport::new(&model, &profile.total_ops(), setting, fmm_time).constant_share();

    let top_sp = MicrobenchKind::SinglePrecision.instance(256.0);
    let micro_time = device.execute(top_sp.kernel()).duration_s;
    let micro_share =
        BreakdownReport::new(&model, &top_sp.kernel().ops, setting, micro_time).constant_share();

    assert!(fmm_share > 0.70, "FMM constant share {fmm_share:.2} (paper: 0.75–0.95)");
    assert!(
        micro_share < fmm_share - 0.15,
        "microbench constant share {micro_share:.2} must sit far below the FMM's {fmm_share:.2}"
    );
}

#[test]
fn model_autotunes_at_least_as_well_as_time_oracle() {
    let (model, _) = fitted();
    let outcomes = autotune_microbenchmarks(&model, &[MicrobenchKind::L2], 23);
    let o = &outcomes[0];
    assert!(o.model.mispredictions <= o.oracle.mispredictions);
    assert!(o.model.mean_lost_pct() <= o.oracle.mean_lost_pct() + 1e-9);
}

#[test]
fn whole_facade_quickstart_compiles_and_runs() {
    // The README's five-line quickstart, as a test.
    let mut config = SweepConfig::default();
    config.kinds = vec![MicrobenchKind::L2];
    let dataset = run_sweep(&config);
    let report = fit_model(dataset.training());
    let ops = OpVector::from_pairs(&[(OpClass::FlopSp, 1e9)]);
    let e = report.model.predict_energy_j(&ops, Setting::max_performance(), 0.01);
    assert!(e > 0.0 && e.is_finite());
}
