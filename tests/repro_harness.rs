//! Integration tests over the `dvfs-bench` reproduction harness: every
//! table/figure generator runs at reduced scale and its headline shape
//! matches the paper's.

use dvfs_bench::pipeline::{
    fig4_breakdown, fig5_validation, fig6_energy_breakdown, fig7_buckets, fmm_profiles,
    observations, prefetch_scan, table1_rows, table2_outcomes, try_fitted_model,
};
use dvfs_energy_model::EnergyModel;
use dvfs_microbench::SweepConfig;

const SEED: u64 = 0x5EED;

/// The shared fitted model, pinned fault-free so the paper-band
/// assertions stay deterministic under `FMM_ENERGY_FAULTS` CI passes.
fn fitted_model(seed: u64) -> (EnergyModel, dvfs_microbench::Dataset) {
    let cfg = SweepConfig { seed, faults: None, ..SweepConfig::default() };
    let fit = try_fitted_model(&cfg).expect("clean pipeline");
    (fit.model, fit.dataset)
}
/// Profiles run at the paper's full problem sizes (N up to 262144): the
/// instrumentation pass is analytic, so even F1 profiles in seconds.
const SHIFT: u32 = 0;

#[test]
fn table2_model_beats_oracle_in_every_family() {
    let (model, _) = fitted_model(SEED);
    let outcomes = table2_outcomes(&model, SEED);
    assert_eq!(outcomes.len(), 5);
    let cases: usize = outcomes.iter().map(|o| o.cases).sum();
    assert_eq!(cases, 103, "25+36+23+10+9 intensity points");
    for o in &outcomes {
        assert!(
            o.model.mispredictions <= o.oracle.mispredictions,
            "{}: model {} vs oracle {}",
            o.kind.name(),
            o.model.mispredictions,
            o.oracle.mispredictions
        );
    }
    // The single-precision family is the paper's headline: the oracle is
    // wrong on most cases and pays double-digit energy.
    let sp = &outcomes[0];
    assert!(sp.oracle.mispredictions >= sp.cases * 3 / 5);
    assert!(sp.oracle.mean_lost_pct() > 5.0);
}

#[test]
fn figures_4_through_7_hold_their_shapes() {
    let (model, _) = fitted_model(SEED);
    let profiles = fmm_profiles(SHIFT, SEED);
    assert_eq!(profiles.len(), 8);

    // Fig 4: integer instructions dominate the mix in every input.
    for row in fig4_breakdown(&profiles) {
        let (dp, int) = row.instruction_shares;
        assert!((dp + int - 1.0).abs() < 1e-9);
        assert!(int > 0.45 && int < 0.75, "{}: int share {int:.2}", row.f_id);
        let (sm, l1, l2, dram) = row.byte_shares;
        assert!((sm + l1 + l2 + dram - 1.0).abs() < 1e-9);
        assert!(dram < 0.40, "{}: DRAM is a minority of accesses: {dram:.2}", row.f_id);
    }

    // Fig 5: 64 cases, error in the paper's band.
    let (cases, stats) = fig5_validation(&model, &profiles, SEED);
    assert_eq!(cases.len(), 64);
    assert!(stats.mean_pct < 12.0, "fig5 mean error {:.2}% (paper 6.17%)", stats.mean_pct);

    // Fig 6: DRAM's energy share exceeds its access share.
    for (f_id, report) in fig6_energy_breakdown(&model, &profiles, SEED) {
        let dram_energy = report.dram_share_of_data();
        assert!(dram_energy > 0.25, "{f_id}: DRAM energy share {dram_energy:.2}");
    }

    // Fig 7: constant power dominates every case.
    let rows = fig7_buckets(&model, &cases);
    for r in &rows {
        assert!(r.constant > 0.55, "{}: constant {:.2}", r.label, r.constant);
    }
}

#[test]
fn observations_match_paper_directions() {
    let (model, _) = fitted_model(SEED);
    let profiles = fmm_profiles(SHIFT, SEED);
    let (cases, _) = fig5_validation(&model, &profiles, SEED);
    let o = observations(&model, &profiles, &cases, SEED);

    // (a) integer ops: majority of instructions, minority of energy.
    assert!(o.integer_instruction_share > 0.45);
    assert!(o.integer_energy_share < o.integer_instruction_share - 0.10);
    // (b) DRAM: minority of accesses, (near-)majority of data energy.
    assert!(o.dram_access_share < 0.40);
    assert!(o.dram_energy_share > 2.0 * o.dram_access_share);
    // (c) constant power dominates the FMM...
    assert!(o.fmm_constant_share_range.0 > 0.55);
    // ... far more than the saturating microbenchmarks.
    assert!(o.microbench_constant_share < o.fmm_constant_share_range.0);
    // (d) hence racing to halt is fine for the FMM.
    assert!(o.fmm_best_energy_is_best_time);
}

#[test]
fn table1_tracks_paper_columns() {
    let (model, _) = fitted_model(SEED);
    let rows = table1_rows(&model);
    assert_eq!(rows.len(), 16);
    for row in &rows {
        for (got, want) in [
            (row.measured.0, row.paper.0),
            (row.measured.5, row.paper.5),
            (row.measured.6, row.paper.6),
        ] {
            let rel = (got - want).abs() / want;
            assert!(rel < 0.20, "{}: {got:.1} vs {want:.1}", row.setting.label());
        }
    }
}

#[test]
fn prefetch_breakeven_grows_with_waste() {
    let (model, _) = fitted_model(SEED);
    let profiles = fmm_profiles(SHIFT, SEED);
    let scan = prefetch_scan(&model, &profiles[0].1, 1.0);
    for w in scan.windows(2) {
        assert!(w[1].1 > w[0].1, "more unused data -> larger tolerable slowdown");
    }
    for (_, breakeven) in &scan {
        assert!(*breakeven > 1.0);
    }
}
