//! Integration tests for the extension features (DESIGN.md A-series and
//! beyond): rooflines, Pareto trade-offs, governors, bootstrap
//! uncertainty, model-structure ablation, trace segmentation, forces,
//! and kernel independence — all through the public facade.

use fmm_energy::model::experiments::SYSTEM_SETTINGS;
use fmm_energy::platform::{EnergyEstimates, Governor};
use fmm_energy::powermon::{segment_trace, PowerTrace, SegmentConfig};
use fmm_energy::prelude::*;

fn fitted() -> (EnergyModel, Dataset) {
    let dataset = run_sweep(&SweepConfig { seed: 0xE57, faults: None, ..SweepConfig::default() });
    (fit_model(dataset.training()).model, dataset)
}

#[test]
fn roofline_energy_balance_sits_right_of_time_balance() {
    let (model, _) = fitted();
    let roofline = EnergyRoofline::new(&model);
    for sys in SYSTEM_SETTINGS {
        let p = roofline.at(sys.setting());
        assert!(
            p.energy_balance > p.time_balance,
            "{}: B_ε {:.1} vs B_τ {:.1}",
            sys.id,
            p.energy_balance,
            p.time_balance
        );
    }
}

#[test]
fn pareto_frontier_of_a_real_kernel_is_consistent() {
    use fmm_energy::model::pareto::OperatingPointMeasure;
    let kernel = MicrobenchKind::SinglePrecision.instance(32.0);
    let mut device = Device::new(4);
    let mut meter = PowerMon::new(5);
    let points: Vec<OperatingPointMeasure> = Setting::all()
        .map(|s| {
            device.set_operating_point(s);
            let m = meter.measure(&mut device, kernel.kernel());
            OperatingPointMeasure {
                setting: s,
                time_s: m.execution.duration_s,
                energy_j: m.measured_energy_j,
            }
        })
        .collect();
    let analysis = TradeoffAnalysis::new(points);
    let t_fast = analysis.min_time().time_s;
    let t_edp = analysis.min_edp().time_s;
    let t_energy = analysis.min_energy().time_s;
    assert!(t_fast <= t_edp + 1e-12 && t_edp <= t_energy + 1e-12);
    assert!(analysis.race_to_halt_penalty() >= 0.0);
    assert!(!analysis.pareto_frontier().is_empty());
}

#[test]
fn model_based_governor_never_loses_to_race_to_halt() {
    let (model, _) = fitted();
    let estimates = EnergyEstimates {
        c0_pj_per_v2: model.c0_pj_per_v2,
        c1_proc_w_per_v: model.c1_proc_w_per_v,
        c1_mem_w_per_v: model.c1_mem_w_per_v,
        p_misc_w: model.p_misc_w,
    };
    let kernels: Vec<KernelProfile> = [1.0, 8.0, 64.0]
        .iter()
        .map(|&a| MicrobenchKind::SinglePrecision.instance(a).kernel().clone())
        .collect();
    let mut device = Device::new(8);
    let race = Governor::Performance.run(&mut device, &kernels);
    let model_run = Governor::ModelBased(estimates).run(&mut device, &kernels);
    assert!(
        model_run.total_energy_j <= race.total_energy_j * 1.02,
        "model {} J vs race {} J",
        model_run.total_energy_j,
        race.total_energy_j
    );
}

#[test]
fn bootstrap_quantifies_the_dp_conditioning_problem() {
    let (_, dataset) = fitted();
    let report = fmm_energy::model::bootstrap_fit(&dataset, 16, 3);
    let sp = report.c0_of(OpClass::FlopSp);
    let dp = report.c0_of(OpClass::FlopDp);
    assert!(sp.lo <= sp.hi && dp.lo <= dp.hi);
    assert!(
        dp.relative_half_width() > sp.relative_half_width(),
        "ε_DP is harder to identify than ε_SP"
    );
}

#[test]
fn model_ablation_orders_by_expressiveness() {
    let (_, dataset) = fitted();
    let rows = fmm_energy::model::model_structure_ablation(&dataset);
    assert!(rows[0].holdout.mean_pct < rows[1].holdout.mean_pct);
    assert!(rows[1].holdout.mean_pct < rows[2].holdout.mean_pct);
}

#[test]
fn trace_segmentation_recovers_phase_energy() {
    let mut device = Device::new(12);
    let mut meter = PowerMon::new(13);
    let hot = KernelProfile::new("hot", OpVector::from_pairs(&[(OpClass::FlopSp, 5e10)]));
    let cold = KernelProfile::new("cold", OpVector::from_pairs(&[(OpClass::Dram, 4e8)]))
        .with_utilization(0.4);
    let a = meter.measure(&mut device, &hot);
    let b = meter.measure(&mut device, &cold);
    let mut samples = a.trace.samples().to_vec();
    samples.extend_from_slice(b.trace.samples());
    let combined = PowerTrace::new(a.trace.sample_rate_hz(), samples);
    let segments = segment_trace(&combined, &SegmentConfig::default());
    assert!(segments.len() >= 2);
    let total: f64 = segments.iter().map(|s| s.energy_j).sum();
    let expected = combined.mean_power_w() * combined.duration_s();
    assert!((total - expected).abs() / expected < 1e-9);
}

#[test]
fn forces_and_kernel_independence_through_the_facade() {
    use fmm_energy::fmm::distributions::plummer;
    let pts = plummer(800, 0.08, 40);
    let den: Vec<f64> = (0..pts.len()).map(|i| ((i % 5) as f64) - 2.0).collect();
    // Laplace with gradients.
    let plan = FmmPlan::new(&pts, &den, 32, 4, M2lMethod::Fft);
    let (pot, grad) = FmmEvaluator::new().evaluate_with_gradient(&plan);
    assert_eq!(pot.len(), pts.len());
    assert_eq!(grad.len(), pts.len());
    assert!(grad.iter().any(|g| g.iter().any(|&c| c != 0.0)));
    // Yukawa through the same machinery.
    let kernel = YukawaKernel::new(2.0);
    let yplan = FmmPlan::with_kernel(kernel, &pts, &den, 32, 4, M2lMethod::Fft);
    let ypot = FmmEvaluator::new().evaluate(&yplan);
    let direct = direct_sum_with(&kernel, &pts, &den);
    assert!(relative_l2_error(&ypot, &direct) < 1e-2);
}

#[test]
fn csv_round_trip_through_the_facade() {
    let (_, dataset) = fitted();
    let csv = to_csv(&dataset);
    let back = from_csv(&csv).expect("parse own output");
    assert_eq!(back.len(), dataset.len());
}
