//! Soak tests for the autotune service (ISSUE 6 satellite).
//!
//! A seeded 10k-request mixed-burst run through `bench::service_load`
//! must be lossless (every request answered), bounded (queue depth
//! never exceeds the configured capacity), and golden (the
//! order-insensitive run digest matches a committed constant and is
//! identical across 1/2/4/8 shard threads).  A faulted variant of the
//! same soak must *degrade* — `FitDiagnostics` fallbacks and sweep
//! retries — instead of erroring.
//!
//! Every config pins `faults` explicitly, so these digests hold whether
//! or not CI exports `FMM_ENERGY_FAULTS`.

use dvfs_bench::service_load::{service_load, LoadConfig};
use tk1_sim::FaultConfig;

/// The soak workload: 10k seeded mixed-burst requests, kernel-heavy
/// with occasional governor plans, against a production-shaped server.
fn soak_config() -> LoadConfig {
    LoadConfig {
        requests: 10_000,
        clients: 4,
        burst: 32,
        shards: 4,
        queue_capacity: 256,
        batch_max: 32,
        cache_capacity: 32,
        distinct_devices: 12,
        fmm_per_mille: 0,
        fmm_sizes: Vec::new(),
        plan_per_mille: 5,
        seed: 0x50AC_2016,
        faults: None,
        overload_probes: 0,
    }
}

/// The committed digest of [`soak_config`]'s run.  A change here means
/// the service's answers changed — model fit, grid prediction, phase
/// planning, or request synthesis — and must be deliberate.
const SOAK_DIGEST: u64 = 0xe1d1_f6a5_54bc_d391;

#[test]
fn soak_10k_requests_is_lossless_bounded_and_golden() {
    let cfg = soak_config();
    let run = service_load(&cfg);
    assert_eq!(run.served, cfg.requests, "zero lost requests");
    assert_eq!(run.fit_errors, 0, "clean campaign never errors");
    assert_eq!(run.main_rejections, 0, "sized queues never reject the soak");
    assert!(
        run.max_queue_depth <= cfg.queue_capacity,
        "queue depth {} exceeded capacity {}",
        run.max_queue_depth,
        cfg.queue_capacity
    );
    assert!(run.cache_hit_rate > 0.99, "12 devices over 10k requests must be mostly hits");
    assert_eq!(run.degraded_responses, 0, "clean fits never take the degradation ladder");
    assert_eq!(run.digest, SOAK_DIGEST, "service answers changed: new digest {:#018x}", run.digest);
}

#[test]
fn soak_digest_is_identical_across_1_2_4_8_shards() {
    for shards in [1usize, 2, 8] {
        let cfg = LoadConfig { shards, ..soak_config() };
        let run = service_load(&cfg);
        assert_eq!(run.served, cfg.requests, "{shards} shards lost requests");
        assert_eq!(
            run.digest, SOAK_DIGEST,
            "digest diverged at {shards} shard(s): {:#018x}",
            run.digest
        );
    }
    // (4 shards is covered by the golden soak above.)
}

#[test]
fn fmm_specs_flow_through_the_lowering_path_identically_across_shards() {
    let base = LoadConfig {
        requests: 400,
        clients: 2,
        shards: 1,
        distinct_devices: 3,
        fmm_per_mille: 30,
        fmm_sizes: vec![1024],
        plan_per_mille: 0,
        seed: 0xF3A_2016,
        faults: None,
        overload_probes: 0,
        ..soak_config()
    };
    let one = service_load(&base);
    assert_eq!(one.served, base.requests);
    let two = service_load(&LoadConfig { shards: 2, ..base.clone() });
    assert_eq!(two.served, base.requests);
    assert_eq!(one.digest, two.digest, "lowering must not depend on which shard runs it");
}

#[test]
fn faulted_soak_degrades_instead_of_erroring() {
    let cfg = LoadConfig {
        requests: 4_000,
        distinct_devices: 8,
        faults: Some(FaultConfig::default_campaign()),
        ..soak_config()
    };
    let run = service_load(&cfg);
    assert_eq!(run.served, cfg.requests, "faults must never lose a request");
    assert_eq!(run.fit_errors, 0, "faults degrade through FitDiagnostics, not errors");
    assert!(
        run.degraded_responses > 0 || run.sweep_retries > 0,
        "the default campaign must visibly exercise the degradation ladder \
         (degraded {} / retries {})",
        run.degraded_responses,
        run.sweep_retries
    );
    // The faulted pipeline is still seeded end to end: same campaign,
    // same answers.
    let again = service_load(&cfg);
    assert_eq!(run.digest, again.digest, "faulted runs must be deterministic");
    assert_eq!(run.degraded_responses, again.degraded_responses);
}
