#!/usr/bin/env bash
# Hermetic CI for the fmm-energy workspace.
#
# The build is zero-dependency by policy (see DESIGN.md): everything
# must compile and test with --offline, touching no registry, no
# vendored sources and no [patch] tables.  This script is the contract.
#
# Usage: scripts/ci.sh [--with-benches] [--with-snapshot]
#   --with-benches    also smoke-run every bench target via --quick
#   --with-snapshot   also run scripts/bench_snapshot.sh (3 reps, small
#                     sizes), regenerate the governor and service
#                     artifacts, and validate every JSON with the
#                     in-tree compat::json parser

set -euo pipefail
cd "$(dirname "$0")/.."

WITH_BENCHES=0
WITH_SNAPSHOT=0
for arg in "$@"; do
    case "$arg" in
        --with-benches) WITH_BENCHES=1 ;;
        --with-snapshot) WITH_SNAPSHOT=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo test -q --offline (FMM_ENERGY_FAULTS=default)"
# The whole suite again under the documented default fault-injection
# rates: the hardened pipeline must absorb every injected fault (see
# DESIGN.md §9).  Tests that assert exact paper-band numbers pin
# `faults: None` explicitly and are unaffected.
FMM_ENERGY_FAULTS=default cargo test -q --offline --workspace

echo "==> panic-free gate (non-test code in crates/{core,powermon,microbench,autoserve})"
# The measurement-to-fit pipeline and the serving layer report failures
# via PipelineError; a new `.unwrap()` or `panic!(` in their non-test
# code is a regression.  The `#[cfg(test)]` tail of each module (the
# repo-wide idiom) and comment lines are exempt.
GATE_VIOLATIONS=$(find crates/core/src crates/powermon/src crates/microbench/src \
    crates/autoserve/src -name '*.rs' \
    | while read -r f; do
        awk -v file="$f" '
            /#\[cfg\(test\)\]/ { exit }
            {
                l = $0
                sub(/^[[:space:]]+/, "", l)
                if (l ~ /^\/\//) next
                if ($0 ~ /\.unwrap\(\)/ || $0 ~ /panic!\(/) print file ":" FNR ": " $0
            }
        ' "$f"
    done)
if [[ -n "$GATE_VIOLATIONS" ]]; then
    echo "error: unwrap()/panic!() in non-test pipeline code — return PipelineError instead:" >&2
    echo "$GATE_VIOLATIONS" >&2
    exit 1
fi

echo "==> governor smoke test (repro governor, tiny inputs)"
# Every policy over the 8 paper inputs at 1/64 scale: once clean, once
# under the default fault campaign.  The run must complete and report
# the per-phase-model win count in both regimes.
cargo run --offline --release -p dvfs-bench --bin repro -- governor --scale-shift 6 \
    | grep -q "per-phase-model matches or beats"
FMM_ENERGY_FAULTS=default \
    cargo run --offline --release -p dvfs-bench --bin repro -- governor --scale-shift 6 \
    | grep -q "per-phase-model matches or beats"

echo "==> fmm: committed BENCH_fmm.json (schema + grid coverage + digests)"
# The committed scaling snapshot must cover the full 1/2/4/8-thread
# grid up to n = 2^20 and carry one potential digest per (n, threads)
# point, identical across thread counts at each size — the engine's
# bitwise thread-invariance claim, checkable from the artifact alone.
cargo run --offline --release -p dvfs-bench --bin bench_snapshot -- \
    --check-fmm BENCH_fmm.json

echo "==> service: committed BENCH_service.json (schema + invariants)"
# The committed serving artifact must be a >=1M-request run with
# cache-hit p99 at least 10x below cold-fit p99, partial overload
# rejections, and identical digests across the 1/2/4/8-shard sweep.
cargo run --offline --release -p dvfs-bench --bin bench_snapshot -- \
    --check-service BENCH_service.json

echo "==> service: soak, clean + faulted (tests/service.rs, release)"
# The 10k-request soak: lossless, bounded queues, golden digest across
# shard counts; under the default fault campaign it must degrade
# through FitDiagnostics fallbacks instead of erroring.
cargo test -q --offline --release --test service
FMM_ENERGY_FAULTS=default cargo test -q --offline --release --test service

if [[ "$WITH_BENCHES" == 1 ]]; then
    for bench in numerics model fmm_phases; do
        echo "==> cargo bench --bench $bench -- --quick"
        cargo bench --offline -p dvfs-bench --bench "$bench" -- --quick
    done
fi

if [[ "$WITH_SNAPSHOT" == 1 ]]; then
    echo "==> scripts/bench_snapshot.sh (CI shape check)"
    scripts/bench_snapshot.sh --out target/BENCH_ci.json --reps 3 --sizes 4096
    cargo run --offline --release -p dvfs-bench --bin bench_snapshot -- \
        --check target/BENCH_ci.json
    echo "==> fmm: fresh grid vs committed baseline (>10% regression gate)"
    # Re-measure the smallest committed size over the full thread grid
    # and fail if evaluate regressed >10% at any (n, threads) point.
    scripts/bench_snapshot.sh --out target/BENCH_ci_fmm.json --reps 3 --sizes 8192
    cargo run --offline --release -p dvfs-bench --bin bench_snapshot -- \
        --check-fmm target/BENCH_ci_fmm.json --baseline-fmm BENCH_fmm.json
    scripts/bench_snapshot.sh --governor target/BENCH_governor_ci.json --scale-shift 6
    cargo run --offline --release -p dvfs-bench --bin bench_snapshot -- \
        --check-governor target/BENCH_governor_ci.json
    scripts/bench_snapshot.sh --service target/BENCH_service_ci.json
    cargo run --offline --release -p dvfs-bench --bin bench_snapshot -- \
        --check-service target/BENCH_service_ci.json
fi

echo "==> OK"
