#!/usr/bin/env bash
# Phase-timing snapshot of the FMM evaluation engine.
#
# Builds the release `bench_snapshot` binary and writes `BENCH_fmm.json`:
# per-phase wall-time medians plus the total `FmmEvaluator::evaluate`
# time for the standard uniform-cube problem (q = 64, p = 4, FFT M2L).
# Commit the refreshed JSON alongside performance changes so the
# engine's cost split is tracked in-repo.
#
# Usage: scripts/bench_snapshot.sh [--out FILE] [--reps K] [--sizes N1,N2]
#   defaults: --out BENCH_fmm.json --reps 7 --sizes 8192,32768
#
# Governor mode: scripts/bench_snapshot.sh --governor BENCH_governor.json
# instead runs the phase-aware DVFS governor comparison (every policy
# over the paper's 8 FMM inputs, transition costs included) and writes
# per-policy energy/time as JSON.  Commit the refreshed
# `BENCH_governor.json` alongside governor or model changes.
#
# Service mode: scripts/bench_snapshot.sh --service BENCH_service.json
# instead drives the autotune server with the closed-loop load
# generator (>=1M seeded requests, a 1/2/4/8-shard digest sweep, and an
# overload probe) and writes latency/throughput/cache/rejection results
# as JSON.  Commit the refreshed `BENCH_service.json` alongside serving
# or model changes; `--check-service` validates it in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --offline --release -p dvfs-bench --bin bench_snapshot -- "$@"
