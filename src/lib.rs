//! # fmm-energy
//!
//! A reproduction of *"Analyzing the Energy Efficiency of the Fast
//! Multipole Method Using a DVFS-Aware Energy Model"* (Choi & Vuduc,
//! IPDPS 2016) as a Rust workspace: the DVFS-aware energy roofline
//! model, the microbenchmark-based fitting methodology, the energy
//! autotuner, and the kernel-independent FMM proxy application — plus
//! simulated equivalents of the hardware the paper measured (a Jetson
//! TK1 board and a PowerMon 2 power meter).
//!
//! This crate is a facade: it re-exports the public APIs of the
//! workspace crates under stable module names.
//!
//! ## Quickstart
//!
//! ```
//! use fmm_energy::prelude::*;
//!
//! // 1. Collect microbenchmark measurements on the simulated board.
//! let mut config = SweepConfig::default();
//! config.kinds = vec![MicrobenchKind::SinglePrecision];
//! let dataset = run_sweep(&config);
//!
//! // 2. Fit the DVFS-aware energy model by NNLS.
//! let report = fit_model(dataset.training());
//!
//! // 3. Predict the energy of an arbitrary kernel at a DVFS setting.
//! let ops = OpVector::from_pairs(&[(OpClass::FlopSp, 1e9), (OpClass::Dram, 1e7)]);
//! let setting = Setting::max_performance();
//! let joules = report.model.predict_energy_j(&ops, setting, 0.01);
//! assert!(joules > 0.0);
//! ```
//!
//! See `examples/` for complete scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

/// The DVFS-aware energy roofline model: fitting, cross-validation,
/// autotuning, breakdowns, and the prefetch what-if calculator.
pub use dvfs_energy_model as model;

/// The kernel-independent FMM: octree, interaction lists, translation
/// operators, FFT M2L, evaluator, and the nvprof-style profiler.
pub use kifmm as fmm;

/// The simulated Jetson TK1 platform (DVFS tables, timing and power
/// ground truth, kernel execution).
pub use tk1_sim as platform;

/// The simulated PowerMon 2 power meter.
pub use powermon_sim as powermon;

/// The online phase-aware DVFS governor runtime: pluggable policies,
/// the transition-cost model, and the FMM phase-boundary driver.
pub use dvfs_governor as governor;

/// The intensity microbenchmark suite and sweep driver.
pub use dvfs_microbench as microbench;

/// Energy-tuning-as-a-service: the sharded, batching autotune server
/// with per-device model caching and explicit backpressure.
pub use dvfs_autoserve as autoserve;

/// nvprof-style counters and the cache-hierarchy simulator.
pub use gpu_counters as counters;

/// Dense linear algebra (QR, SVD, Cholesky, NNLS).
pub use dvfs_linalg as linalg;

/// FFTs and spectral convolution.
pub use dvfs_fft as fft;

/// The most common imports in one place.
pub mod prelude {
    pub use dvfs_autoserve::{
        AutoServer, Rejected, ServeConfig, TuneRequest, TuneResponse, WorkloadSpec,
    };
    pub use dvfs_energy_model::{
        autotune_microbenchmarks, fit_model, holdout_validation, leave_one_setting_out,
        prefetch_whatif, BreakdownReport, DiagnosticReport, EnergyModel, EnergyRoofline,
        ErrorStats, PrefetchScenario, TradeoffAnalysis,
    };
    pub use dvfs_governor::{
        governed_evaluate, GovernorConfig, GovernorRuntime, PerPhaseAdaptive, PerPhaseModel,
        Policy, StaticBest, Workload,
    };
    pub use dvfs_microbench::{
        from_csv, run_sweep, to_csv, Dataset, MicrobenchKind, Sample, SweepConfig,
    };
    pub use kifmm::evaluator::{FmmPlan, M2lMethod};
    pub use kifmm::{
        direct_sum, direct_sum_with, profile_plan, relative_l2_error, CostModel, FmmEvaluator,
        Kernel, LaplaceKernel, Phase, YukawaKernel,
    };
    pub use powermon_sim::PowerMon;
    pub use tk1_sim::{Device, Governor, KernelProfile, OpClass, OpVector, Setting};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_working_pipeline() {
        let device = Device::new(1);
        assert!(device.idle_power_w() > 0.0);
        let setting = Setting::max_performance();
        assert_eq!(setting.label(), "852/924");
    }
}
